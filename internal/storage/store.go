package storage

import (
	"fmt"
	"strings"

	"xquec/internal/btree"
	"xquec/internal/compress"
)

// Store is a loaded compressed repository: dictionary, structure tree,
// B+ index, containers, structure summary and source models.
type Store struct {
	// Names is the node-name dictionary: tag code -> name. Attribute
	// names are stored with an '@' prefix; "#text" is the value tag.
	Names   []string
	nameIdx map[string]uint16

	// Nodes holds the structure tree; Nodes[id-1] is the record of id.
	Nodes []NodeRecord
	// End[id-1] is the largest ID in the subtree of id, Level[id-1] its
	// depth — together with the pre-order ID these are the "3-valued
	// IDs" (pre/post/level) the paper lists as future work; they enable
	// O(1) ancestorship tests and structural joins.
	End   []NodeID
	Level []uint16

	Containers []*Container
	Sum        *Summary

	// Index is the redundant B+ tree over node IDs (§2.2). With dense
	// pre-order IDs it is not strictly necessary, but it is part of the
	// paper's storage model and of the footprint ablation.
	Index *btree.Tree

	// Models maps source-model group name -> (algorithm, codec).
	Models map[string]GroupModel

	// OriginalSize is the byte size of the loaded XML document.
	OriginalSize int

	// Build records the ingestion pipeline's phase timings and worker
	// count. Zero for repositories opened from disk.
	Build BuildStats
}

// GroupModel is one shared source model.
type GroupModel struct {
	Algorithm string
	Codec     compress.Codec
}

// Code returns the dictionary code for a name.
func (s *Store) Code(name string) (uint16, bool) {
	c, ok := s.nameIdx[name]
	return c, ok
}

// Name returns the name for a dictionary code.
func (s *Store) Name(code uint16) string { return s.Names[code] }

// intern returns the code for name, adding it to the dictionary.
func (s *Store) intern(name string) uint16 {
	if c, ok := s.nameIdx[name]; ok {
		return c
	}
	c := uint16(len(s.Names))
	s.Names = append(s.Names, name)
	s.nameIdx[name] = c
	return c
}

// Node returns the record of id. IDs are 1-based.
func (s *Store) Node(id NodeID) *NodeRecord {
	return &s.Nodes[id-1]
}

// NumNodes returns the number of element+attribute nodes.
func (s *Store) NumNodes() int { return len(s.Nodes) }

// Parent returns the parent of id (0 for the root).
func (s *Store) Parent(id NodeID) NodeID { return s.Nodes[id-1].Parent }

// SubtreeEnd returns the largest ID in the subtree of id.
func (s *Store) SubtreeEnd(id NodeID) NodeID { return s.End[id-1] }

// IsAncestor reports whether a is an ancestor of (or equal to) d, using
// the pre/post interval test.
func (s *Store) IsAncestor(a, d NodeID) bool {
	return a <= d && d <= s.End[a-1]
}

// Container returns the i-th container.
func (s *Store) Container(i int32) *Container { return s.Containers[i] }

// ContainerByPath returns the container storing the values of a path
// such as /site/people/person/name/#text.
func (s *Store) ContainerByPath(path string) (*Container, bool) {
	for _, c := range s.Containers {
		if c.Path == path {
			return c, true
		}
	}
	return nil, false
}

// TagOf returns the tag name of a node.
func (s *Store) TagOf(id NodeID) string { return s.Names[s.Nodes[id-1].Tag] }

// IsAttr reports whether the node is an attribute node.
func (s *Store) IsAttr(id NodeID) bool { return strings.HasPrefix(s.TagOf(id), "@") }

// Text appends the decompressed concatenation of the node's immediate
// text values (for attribute nodes, the attribute value).
func (s *Store) Text(dst []byte, id NodeID) ([]byte, error) {
	n := &s.Nodes[id-1]
	var err error
	for _, vr := range n.Values {
		dst, err = s.Containers[vr.Container].Decode(dst, int(vr.Index))
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DeepText appends the decompressed concatenation of every text value in
// the subtree of id (document order) — the string value of an element.
func (s *Store) DeepText(dst []byte, id NodeID) ([]byte, error) {
	n := &s.Nodes[id-1]
	var err error
	for _, k := range n.Kids {
		if k.IsValue() {
			vr := n.Values[k.ValueIndex()]
			dst, err = s.Containers[vr.Container].Decode(dst, int(vr.Index))
			if err != nil {
				return dst, err
			}
			continue
		}
		if s.IsAttr(k.Node()) {
			continue
		}
		dst, err = s.DeepText(dst, k.Node())
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Serialize appends the XML reconstruction of the subtree rooted at id.
// This is the XMLSerialize operator's core: the only place where whole
// subtrees are decompressed.
func (s *Store) Serialize(dst []byte, id NodeID) ([]byte, error) {
	sc := NewScratch()
	defer sc.Release()
	return s.SerializeScratch(sc, dst, id)
}

// SerializeScratch is Serialize with the value decodes routed through a
// caller-held scratch buffer, so a streaming consumer serializing many
// subtrees one at a time performs no per-value decode allocation. The
// scratch holds only transient single-value state between calls.
func (s *Store) SerializeScratch(sc *Scratch, dst []byte, id NodeID) ([]byte, error) {
	n := &s.Nodes[id-1]
	tag := s.Names[n.Tag]
	if strings.HasPrefix(tag, "@") {
		// Attribute serialized standalone: name="value".
		dst = append(dst, tag[1:]...)
		dst = append(dst, '=', '"')
		v, err := s.TextScratch(sc, id)
		if err != nil {
			return dst, err
		}
		dst = appendEscapedAttr(dst, v)
		return append(dst, '"'), nil
	}
	if tag == "#text" {
		v, err := s.TextScratch(sc, id)
		if err != nil {
			return dst, err
		}
		return appendEscapedText(dst, v), nil
	}
	dst = append(dst, '<')
	dst = append(dst, tag...)
	// Attributes first.
	for _, k := range n.Kids {
		if k.IsValue() {
			continue
		}
		kid := k.Node()
		if !s.IsAttr(kid) {
			continue
		}
		dst = append(dst, ' ')
		var err error
		dst, err = s.SerializeScratch(sc, dst, kid)
		if err != nil {
			return dst, err
		}
	}
	hasContent := false
	for _, k := range n.Kids {
		if k.IsValue() || !s.IsAttr(k.Node()) {
			hasContent = true
			break
		}
	}
	if !hasContent {
		return append(dst, '/', '>'), nil
	}
	dst = append(dst, '>')
	var err error
	for _, k := range n.Kids {
		if k.IsValue() {
			vr := n.Values[k.ValueIndex()]
			var v []byte
			v, err = s.Containers[vr.Container].DecodeScratch(sc, int(vr.Index))
			if err != nil {
				return dst, err
			}
			dst = appendEscapedText(dst, v)
			continue
		}
		if s.IsAttr(k.Node()) {
			continue
		}
		dst, err = s.SerializeScratch(sc, dst, k.Node())
		if err != nil {
			return dst, err
		}
	}
	dst = append(dst, '<', '/')
	dst = append(dst, tag...)
	return append(dst, '>'), nil
}

func appendEscapedText(dst, v []byte) []byte {
	for _, b := range v {
		switch b {
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '&':
			dst = append(dst, "&amp;"...)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

func appendEscapedAttr(dst, v []byte) []byte {
	for _, b := range v {
		switch b {
		case '<':
			dst = append(dst, "&lt;"...)
		case '&':
			dst = append(dst, "&amp;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

// Validate checks the structural invariants of the repository; tests and
// the loader's failure-injection suite rely on it.
func (s *Store) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("storage: empty structure tree")
	}
	for i := range s.Nodes {
		id := NodeID(i + 1)
		n := &s.Nodes[i]
		if int(n.Tag) >= len(s.Names) {
			return fmt.Errorf("storage: node %d has out-of-range tag %d", id, n.Tag)
		}
		if n.Parent >= id {
			return fmt.Errorf("storage: node %d has non-preceding parent %d", id, n.Parent)
		}
		if s.End[i] < id || int(s.End[i]) > len(s.Nodes) {
			return fmt.Errorf("storage: node %d has bad subtree end %d", id, s.End[i])
		}
		for _, k := range n.Kids {
			if k.IsValue() {
				if k.ValueIndex() >= len(n.Values) {
					return fmt.Errorf("storage: node %d has dangling value ref", id)
				}
				continue
			}
			kid := k.Node()
			if kid <= id || int(kid) > len(s.Nodes) {
				return fmt.Errorf("storage: node %d has bad child %d", id, kid)
			}
			if s.Nodes[kid-1].Parent != id {
				return fmt.Errorf("storage: child %d of %d has parent %d", kid, id, s.Nodes[kid-1].Parent)
			}
		}
		for _, vr := range n.Values {
			if int(vr.Container) >= len(s.Containers) {
				return fmt.Errorf("storage: node %d references container %d", id, vr.Container)
			}
			c := s.Containers[vr.Container]
			if int(vr.Index) >= c.Len() {
				return fmt.Errorf("storage: node %d references record %d of %s", id, vr.Index, c.Path)
			}
			if c.Record(int(vr.Index)).Owner != id {
				return fmt.Errorf("storage: value owner mismatch for node %d", id)
			}
		}
	}
	for _, sn := range s.Sum.Nodes() {
		for j := 1; j < len(sn.Extent); j++ {
			if sn.Extent[j-1] >= sn.Extent[j] {
				return fmt.Errorf("storage: summary %s extent not increasing", sn.Path())
			}
		}
		if sn.Container >= 0 && int(sn.Container) >= len(s.Containers) {
			return fmt.Errorf("storage: summary %s references container %d", sn.Path(), sn.Container)
		}
	}
	return nil
}
