package storage

import (
	"fmt"
	"iter"
	"strings"

	"xquec/internal/btree"
	"xquec/internal/compress"
)

// Store is a loaded compressed repository: dictionary, structure tree,
// B+ index, containers, structure summary and source models.
//
// The structure tree lives behind one of two backends: the explicit
// per-node record arrays (the paper's layout, XQUEC_STRUCT=records) or
// the balanced-parentheses self-index (the default — see
// SuccinctStructure). All structural access goes through the accessor
// methods, which answer identically on either backend.
type Store struct {
	// Names is the node-name dictionary: tag code -> name. Attribute
	// names are stored with an '@' prefix; "#text" is the value tag.
	Names   []string
	nameIdx map[string]uint16

	// Record backend: nodes[id-1] is the record of id; end[id-1] the
	// largest ID in its subtree, level[id-1] its depth — the "3-valued
	// IDs" (pre/post/level) enabling O(1) ancestorship tests. Nil when
	// the succinct backend is active.
	nodes []NodeRecord
	end   []NodeID
	level []uint16

	// Succinct backend: the BP self-index. Nil in records mode.
	succ *SuccinctStructure

	Containers []*Container
	Sum        *Summary

	// Index is the redundant B+ tree over node IDs (§2.2). With dense
	// pre-order IDs it is not strictly necessary, but it is part of the
	// paper's storage model and of the footprint ablation. The succinct
	// backend — whose point is minimal resident structure — skips it.
	Index *btree.Tree

	// Models maps source-model group name -> (algorithm, codec).
	Models map[string]GroupModel

	// OriginalSize is the byte size of the loaded XML document.
	OriginalSize int

	// Build records the ingestion pipeline's phase timings and worker
	// count. Zero for repositories opened from disk.
	Build BuildStats
}

// GroupModel is one shared source model.
type GroupModel struct {
	Algorithm string
	Codec     compress.Codec
}

// Code returns the dictionary code for a name.
func (s *Store) Code(name string) (uint16, bool) {
	c, ok := s.nameIdx[name]
	return c, ok
}

// Name returns the name for a dictionary code.
func (s *Store) Name(code uint16) string { return s.Names[code] }

// intern returns the code for name, adding it to the dictionary.
func (s *Store) intern(name string) uint16 {
	if c, ok := s.nameIdx[name]; ok {
		return c
	}
	c := uint16(len(s.Names))
	s.Names = append(s.Names, name)
	s.nameIdx[name] = c
	return c
}

// StructureKind reports which structure backend is active.
func (s *Store) StructureKind() StructureKind {
	if s.succ != nil {
		return StructSuccinct
	}
	return StructRecords
}

// StructureStats reports the succinct encoding's resident size in bits:
// the BP proper (paren bitvector + rank/select directories + rmM tree),
// the node-mark bitvector, and the tree node count they encode
// (elements + attributes + immediate text values). All zero when the
// record backend is resident.
func (s *Store) StructureStats() (bpBits, markBits, treeNodes int) {
	if s.succ == nil {
		return 0, 0, 0
	}
	bp, marks, _ := s.succ.footprintBytes()
	return 8 * bp, 8 * marks, s.succ.isNode.Len()
}

// NumNodes returns the number of element+attribute nodes.
func (s *Store) NumNodes() int {
	if s.succ != nil {
		return s.succ.numNodes()
	}
	return len(s.nodes)
}

// Parent returns the parent of id (0 for the root).
func (s *Store) Parent(id NodeID) NodeID {
	if s.succ != nil {
		return s.succ.parent(id)
	}
	return s.nodes[id-1].Parent
}

// SubtreeEnd returns the largest ID in the subtree of id.
func (s *Store) SubtreeEnd(id NodeID) NodeID {
	if s.succ != nil {
		return s.succ.subtreeEnd(id)
	}
	return s.end[id-1]
}

// LevelOf returns the depth of id (the root is 1; an attribute sits one
// below its owner element).
func (s *Store) LevelOf(id NodeID) uint16 {
	if s.succ != nil {
		return s.succ.levelOf(id)
	}
	return s.level[id-1]
}

// IsAncestor reports whether a is an ancestor of (or equal to) d, using
// the pre/post interval test.
func (s *Store) IsAncestor(a, d NodeID) bool {
	return a <= d && d <= s.SubtreeEnd(a)
}

// TagCodeOf returns the dictionary code of the node's tag.
func (s *Store) TagCodeOf(id NodeID) uint16 {
	if s.succ != nil {
		return s.succ.tags[id-1]
	}
	return s.nodes[id-1].Tag
}

// TagOf returns the tag name of a node.
func (s *Store) TagOf(id NodeID) string { return s.Names[s.TagCodeOf(id)] }

// IsAttr reports whether the node is an attribute node.
func (s *Store) IsAttr(id NodeID) bool { return strings.HasPrefix(s.TagOf(id), "@") }

// Kids yields the node's children in document order: element and
// attribute children by ID, immediate text values by value ref.
func (s *Store) Kids(id NodeID) iter.Seq[Kid] {
	if s.succ != nil {
		return s.succ.kids(id)
	}
	n := &s.nodes[id-1]
	return func(yield func(Kid) bool) {
		for _, k := range n.Kids {
			if k.IsValue() {
				if !yield(Kid{Val: n.Values[k.ValueIndex()]}) {
					return
				}
			} else if !yield(Kid{ID: k.Node()}) {
				return
			}
		}
	}
}

// HasText reports whether the node has at least one immediate text
// value (for attribute nodes: the attribute value).
func (s *Store) HasText(id NodeID) bool {
	if s.succ != nil {
		return s.succ.hasText(id)
	}
	return len(s.nodes[id-1].Values) > 0
}

// ScanNodes calls fn for every node in pre-order (= ID order) with its
// depth — the bulk structural sweep behind shard tables and spine
// indexes, cheaper than per-ID LevelOf on either backend.
func (s *Store) ScanNodes(fn func(id NodeID, level uint16)) {
	if s.succ != nil {
		s.succ.scanNodes(fn)
		return
	}
	for i, lvl := range s.level {
		fn(NodeID(i+1), lvl)
	}
}

// Container returns the i-th container.
func (s *Store) Container(i int32) *Container { return s.Containers[i] }

// ContainerByPath returns the container storing the values of a path
// such as /site/people/person/name/#text.
func (s *Store) ContainerByPath(path string) (*Container, bool) {
	for _, c := range s.Containers {
		if c.Path == path {
			return c, true
		}
	}
	return nil, false
}

// Text appends the decompressed concatenation of the node's immediate
// text values (for attribute nodes, the attribute value).
func (s *Store) Text(dst []byte, id NodeID) ([]byte, error) {
	var err error
	for k := range s.Kids(id) {
		if k.ID != 0 {
			continue
		}
		dst, err = s.Containers[k.Val.Container].Decode(dst, int(k.Val.Index))
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DeepText appends the decompressed concatenation of every text value in
// the subtree of id (document order) — the string value of an element.
func (s *Store) DeepText(dst []byte, id NodeID) ([]byte, error) {
	var err error
	for k := range s.Kids(id) {
		if k.ID == 0 {
			dst, err = s.Containers[k.Val.Container].Decode(dst, int(k.Val.Index))
			if err != nil {
				return dst, err
			}
			continue
		}
		if s.IsAttr(k.ID) {
			continue
		}
		dst, err = s.DeepText(dst, k.ID)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Serialize appends the XML reconstruction of the subtree rooted at id.
// This is the XMLSerialize operator's core: the only place where whole
// subtrees are decompressed.
func (s *Store) Serialize(dst []byte, id NodeID) ([]byte, error) {
	sc := NewScratch()
	defer sc.Release()
	return s.SerializeScratch(sc, dst, id)
}

// SerializeScratch is Serialize with the value decodes routed through a
// caller-held scratch buffer, so a streaming consumer serializing many
// subtrees one at a time performs no per-value decode allocation. The
// scratch holds only transient single-value state between calls.
func (s *Store) SerializeScratch(sc *Scratch, dst []byte, id NodeID) ([]byte, error) {
	tag := s.TagOf(id)
	if strings.HasPrefix(tag, "@") {
		// Attribute serialized standalone: name="value".
		dst = append(dst, tag[1:]...)
		dst = append(dst, '=', '"')
		v, err := s.TextScratch(sc, id)
		if err != nil {
			return dst, err
		}
		dst = appendEscapedAttr(dst, v)
		return append(dst, '"'), nil
	}
	if tag == "#text" {
		v, err := s.TextScratch(sc, id)
		if err != nil {
			return dst, err
		}
		return appendEscapedText(dst, v), nil
	}
	dst = append(dst, '<')
	dst = append(dst, tag...)
	// One pass over the children: attributes serialize with the tag,
	// content children are collected for the body (kid iteration is not
	// free on the succinct backend, so avoid repeated sweeps). The
	// collection region [base, base+n) of the shared scratch survives
	// recursive calls, which append past it and truncate on return.
	base := len(sc.kids)
	for k := range s.Kids(id) {
		if k.ID != 0 && s.IsAttr(k.ID) {
			dst = append(dst, ' ')
			var err error
			dst, err = s.SerializeScratch(sc, dst, k.ID)
			if err != nil {
				return dst, err
			}
			continue
		}
		sc.kids = append(sc.kids, k)
	}
	n := len(sc.kids) - base
	defer func() { sc.kids = sc.kids[:base] }()
	if n == 0 {
		return append(dst, '/', '>'), nil
	}
	dst = append(dst, '>')
	var err error
	for i := base; i < base+n; i++ {
		k := sc.kids[i]
		if k.ID == 0 {
			var v []byte
			v, err = s.Containers[k.Val.Container].DecodeScratch(sc, int(k.Val.Index))
			if err != nil {
				return dst, err
			}
			dst = appendEscapedText(dst, v)
			continue
		}
		dst, err = s.SerializeScratch(sc, dst, k.ID)
		if err != nil {
			return dst, err
		}
	}
	dst = append(dst, '<', '/')
	dst = append(dst, tag...)
	return append(dst, '>'), nil
}

func appendEscapedText(dst, v []byte) []byte {
	for _, b := range v {
		switch b {
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '&':
			dst = append(dst, "&amp;"...)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

func appendEscapedAttr(dst, v []byte) []byte {
	for _, b := range v {
		switch b {
		case '<':
			dst = append(dst, "&lt;"...)
		case '&':
			dst = append(dst, "&amp;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

// Validate checks the structural invariants of the repository; tests and
// the loader's failure-injection suite rely on it. It runs entirely on
// the accessor surface, so it validates whichever backend is active.
func (s *Store) Validate() error {
	nNodes := s.NumNodes()
	if nNodes == 0 {
		return fmt.Errorf("storage: empty structure tree")
	}
	for i := 0; i < nNodes; i++ {
		id := NodeID(i + 1)
		if int(s.TagCodeOf(id)) >= len(s.Names) {
			return fmt.Errorf("storage: node %d has out-of-range tag %d", id, s.TagCodeOf(id))
		}
		if p := s.Parent(id); p >= id {
			return fmt.Errorf("storage: node %d has non-preceding parent %d", id, p)
		}
		if e := s.SubtreeEnd(id); e < id || int(e) > nNodes {
			return fmt.Errorf("storage: node %d has bad subtree end %d", id, e)
		}
		for k := range s.Kids(id) {
			if k.ID == 0 {
				vr := k.Val
				if int(vr.Container) >= len(s.Containers) || vr.Container < 0 {
					return fmt.Errorf("storage: node %d references container %d", id, vr.Container)
				}
				c := s.Containers[vr.Container]
				if int(vr.Index) >= c.Len() {
					return fmt.Errorf("storage: node %d references record %d of %s", id, vr.Index, c.Path)
				}
				if c.Record(int(vr.Index)).Owner != id {
					return fmt.Errorf("storage: value owner mismatch for node %d", id)
				}
				continue
			}
			if k.ID <= id || int(k.ID) > nNodes {
				return fmt.Errorf("storage: node %d has bad child %d", id, k.ID)
			}
			if p := s.Parent(k.ID); p != id {
				return fmt.Errorf("storage: child %d of %d has parent %d", k.ID, id, p)
			}
		}
	}
	for _, sn := range s.Sum.Nodes() {
		for j := 1; j < len(sn.Extent); j++ {
			if sn.Extent[j-1] >= sn.Extent[j] {
				return fmt.Errorf("storage: summary %s extent not increasing", sn.Path())
			}
		}
		if sn.Container >= 0 && int(sn.Container) >= len(s.Containers) {
			return fmt.Errorf("storage: summary %s references container %d", sn.Path(), sn.Container)
		}
	}
	return nil
}
