package storage

import "xquec/internal/succinct"

// Bulk structural kernels over the succinct backend. All take their
// inputs in strictly ascending ID order — the NodeSet invariant the
// algebra maintains everywhere — and exploit it by walking the paren
// and mark bitvectors forward with cursor scanners instead of issuing
// an independent Select1 pair per node. The scalar accessors stay the
// single source of truth for semantics; these must agree with them
// element-for-element (pinned by the property tests and the
// differential matrix).

// parentBulk fills out[i] with the parent of ids[i] (0 for a root).
//
// Two cursors turn the per-node Select1 pair into a forward word walk,
// and the excess at the k-th open at position q is 2*(k+1)-(q+1), so
// no rank is ever taken. Sibling runs — the dominant shape of a
// document-ordered batch — repeat the previous answer: any open
// before the parent's close paren and one level below it belongs to
// that same parent, because the parent is the unique depth-ep node
// whose paren pair spans its subtree. Only a parent change pays for an
// ancestor search, which the BP shortcut directories bound to about
// one block scan, plus one FindClose for the new containment bound.
// (A ParenScanner min-excess fold was measured here too; its per-word
// table work on every skipped paren costs more than the occasional
// FindClose on a parent change.)
func (t *SuccinctStructure) parentBulk(ids, out []NodeID) {
	ns := succinct.NewSelectScanner(t.isNode)
	qs := succinct.NewSelectScanner(t.pv)
	var lastPar NodeID
	ep := 0  // depth of lastPar's open paren
	cp := -1 // position of lastPar's close paren
	for i, id := range ids {
		k := ns.Seek(int(id) - 1)
		q := qs.Seek(k)
		e := 2*(k+1) - (q + 1)
		if lastPar != 0 && q < cp && e == ep+1 {
			out[i] = lastPar
			continue
		}
		if e <= 1 {
			out[i] = 0
			lastPar = 0
			continue
		}
		qp := t.bp.EncloseAt(q, e)
		lastPar = t.idAtOpen(qp)
		ep = e - 1
		cp = t.bp.FindCloseAt(qp, ep)
		out[i] = lastPar
	}
}

// subtreeEndBulk fills out[i] with the largest ID in the subtree of
// ids[i], as subtreeEnd but with the two selects amortized across the
// batch and the close-paren rank derived from the open ordinal.
func (t *SuccinctStructure) subtreeEndBulk(ids, out []NodeID) {
	ns := succinct.NewSelectScanner(t.isNode)
	qs := succinct.NewSelectScanner(t.pv)
	for i, id := range ids {
		k := ns.Seek(int(id) - 1)
		q := qs.Seek(k)
		c := t.bp.FindCloseAt(q, 2*(k+1)-(q+1))
		out[i] = NodeID(t.isNode.Rank1(k + (c-q+1)/2))
	}
}

// levelBulk fills out[i] with the depth of ids[i]; the level falls out
// of the ordinal/position pair arithmetically.
func (t *SuccinctStructure) levelBulk(ids []NodeID, out []uint16) {
	ns := succinct.NewSelectScanner(t.isNode)
	qs := succinct.NewSelectScanner(t.pv)
	for i, id := range ids {
		k := ns.Seek(int(id) - 1)
		q := qs.Seek(k)
		out[i] = uint16(2*(k+1) - (q + 1))
	}
}

// ParentBulk fills out[i] with the parent of ids[i] (0 for a root).
// ids must be strictly ascending; out must have len(ids) room.
func (s *Store) ParentBulk(ids, out []NodeID) {
	if s.succ != nil {
		s.succ.parentBulk(ids, out)
		return
	}
	for i, id := range ids {
		out[i] = s.nodes[id-1].Parent
	}
}

// SubtreeEndBulk fills out[i] with the largest ID in the subtree of
// ids[i]. ids must be strictly ascending; out must have len(ids) room.
func (s *Store) SubtreeEndBulk(ids, out []NodeID) {
	if s.succ != nil {
		s.succ.subtreeEndBulk(ids, out)
		return
	}
	for i, id := range ids {
		out[i] = s.end[id-1]
	}
}

// LevelBulk fills out[i] with the depth of ids[i]. ids must be
// strictly ascending; out must have len(ids) room.
func (s *Store) LevelBulk(ids []NodeID, out []uint16) {
	if s.succ != nil {
		s.succ.levelBulk(ids, out)
		return
	}
	for i, id := range ids {
		out[i] = s.level[id-1]
	}
}
