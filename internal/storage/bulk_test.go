package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"xquec/internal/datagen"
)

// The bulk kernels must agree with the scalar accessors element-for-
// element on every backend; the scalar succinct path is itself pinned
// against the record array elsewhere, so the chain roots in one oracle.

// bulkTestStores builds one store per backend per document shape:
// XMark (shallow, bushy) and DeepTree (long recursive spine), the two
// shapes that stress different parts of the BP machinery.
func bulkTestStores(t testing.TB) map[string]*Store {
	t.Helper()
	docs := map[string][]byte{
		"xmark": datagen.XMark(datagen.XMarkConfig{Scale: 0.02, Seed: 7}),
		"deep":  datagen.DeepTree(datagen.DeepTreeConfig{Depth: 700, Fanout: 3, Seed: 7}),
	}
	out := map[string]*Store{}
	for shape, doc := range docs {
		for _, kind := range []StructureKind{StructRecords, StructSuccinct} {
			s, err := Load(doc, LoadOptions{Structure: kind})
			if err != nil {
				t.Fatalf("%s: %v", shape, err)
			}
			name := shape + "/records"
			if kind == StructSuccinct {
				name = shape + "/succinct"
			}
			out[name] = s
		}
	}
	return out
}

// ascendingSubset returns a random strictly ascending ID subset — the
// NodeSet invariant the bulk kernels require.
func ascendingSubset(rng *rand.Rand, n int, density float64) []NodeID {
	var ids []NodeID
	for id := 1; id <= n; id++ {
		if rng.Float64() < density {
			ids = append(ids, NodeID(id))
		}
	}
	return ids
}

func checkBulkAgainstScalar(t *testing.T, s *Store, ids []NodeID) {
	t.Helper()
	n := len(ids)
	pars := make([]NodeID, n)
	ends := make([]NodeID, n)
	levels := make([]uint16, n)
	s.ParentBulk(ids, pars)
	s.SubtreeEndBulk(ids, ends)
	s.LevelBulk(ids, levels)
	for i, id := range ids {
		if want := s.Parent(id); pars[i] != want {
			t.Fatalf("ParentBulk(%d) = %d, scalar Parent = %d", id, pars[i], want)
		}
		if want := s.SubtreeEnd(id); ends[i] != want {
			t.Fatalf("SubtreeEndBulk(%d) = %d, scalar SubtreeEnd = %d", id, ends[i], want)
		}
		if want := s.LevelOf(id); levels[i] != want {
			t.Fatalf("LevelBulk(%d) = %d, scalar LevelOf = %d", id, levels[i], want)
		}
	}
}

// TestBulkKernelsMatchScalar pins the bulk kernels against the scalar
// accessors over random subsets at several densities (dense subsets
// exercise the sequential cursor walk, sparse ones the re-seed path)
// on both document shapes and both backends.
func TestBulkKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, s := range bulkTestStores(t) {
		t.Run(name, func(t *testing.T) {
			n := s.NumNodes()
			for _, density := range []float64{1, 0.25, 0.01} {
				ids := ascendingSubset(rng, n, density)
				if len(ids) == 0 {
					continue
				}
				checkBulkAgainstScalar(t, s, ids)
			}
			// Singletons and the extremes.
			checkBulkAgainstScalar(t, s, []NodeID{1})
			checkBulkAgainstScalar(t, s, []NodeID{NodeID(n)})
			checkBulkAgainstScalar(t, s, []NodeID{1, NodeID(n)})
		})
	}
}

// TestKidsScanMatchesRecords pins the succinct Kids iteration (which
// dispatches between the word-at-a-time subtree scan and the skip
// walk by subtree size) against the record backend's child lists.
func TestKidsScanMatchesRecords(t *testing.T) {
	stores := bulkTestStores(t)
	for _, shape := range []string{"xmark", "deep"} {
		rec, suc := stores[shape+"/records"], stores[shape+"/succinct"]
		for id := NodeID(1); id <= NodeID(rec.NumNodes()); id++ {
			var a, b []string
			for k := range rec.Kids(id) {
				a = append(a, fmt.Sprint(k.ID, k.Val))
			}
			for k := range suc.Kids(id) {
				b = append(b, fmt.Sprint(k.ID, k.Val))
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%s: Kids(%d) differs: records %v, succinct %v", shape, id, a, b)
			}
		}
	}
}

// FuzzBulkNavigation drives the bulk kernels with fuzzer-chosen tree
// shapes and subset seeds, comparing against the scalar accessors.
func FuzzBulkNavigation(f *testing.F) {
	f.Add(int64(1), 60, 2, 0.5)
	f.Add(int64(2), 900, 0, 0.1)
	f.Add(int64(3), 5, 8, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, depth, fanout int, density float64) {
		if depth < 1 || depth > 2000 || fanout < 0 || fanout > 8 {
			t.Skip()
		}
		if density < 0 || density > 1 {
			t.Skip()
		}
		doc := datagen.DeepTree(datagen.DeepTreeConfig{Depth: depth, Fanout: fanout, Seed: seed})
		s, err := Load(doc, LoadOptions{Structure: StructSuccinct})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		ids := ascendingSubset(rng, s.NumNodes(), density)
		if len(ids) == 0 {
			t.Skip()
		}
		checkBulkAgainstScalar(t, s, ids)
	})
}
