package storage

import (
	"math/rand"
	"testing"

	"xquec/internal/datagen"
)

// TestCorruptionNeverPanics mutates serialized repositories in many
// positions and ways; LoadBinary must either reject the input with an
// error or produce a repository that passes Validate — never panic.
func TestCorruptionNeverPanics(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.03, Seed: 13})
	s, err := Load(doc, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob := s.AppendBinary(nil)
	rng := rand.New(rand.NewSource(99))

	tryLoad := func(data []byte, what string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %s: %v", what, r)
			}
		}()
		s2, err := LoadBinary(data)
		if err != nil {
			return // rejected: fine
		}
		if err := s2.Validate(); err != nil {
			t.Fatalf("%s: accepted a repository that fails validation: %v", what, err)
		}
	}

	// Byte flips.
	for i := 0; i < 400; i++ {
		cp := append([]byte(nil), blob...)
		pos := rng.Intn(len(cp))
		cp[pos] ^= byte(1 + rng.Intn(255))
		tryLoad(cp, "byte flip")
	}
	// Truncations.
	for i := 0; i < 100; i++ {
		cut := rng.Intn(len(blob))
		tryLoad(blob[:cut], "truncation")
	}
	// Random insertions.
	for i := 0; i < 100; i++ {
		cp := append([]byte(nil), blob...)
		pos := rng.Intn(len(cp))
		cp = append(cp[:pos], append([]byte{byte(rng.Intn(256))}, cp[pos:]...)...)
		tryLoad(cp, "insertion")
	}
	// Random garbage of various sizes.
	for i := 0; i < 50; i++ {
		garbage := make([]byte, rng.Intn(4096))
		rng.Read(garbage)
		tryLoad(garbage, "garbage")
	}
	// Garbage with a valid magic prefix.
	for i := 0; i < 50; i++ {
		garbage := make([]byte, 6+rng.Intn(512))
		rng.Read(garbage)
		copy(garbage, magic)
		tryLoad(garbage, "magic-prefixed garbage")
	}
}

// TestCorruptionDetectedOrEquivalent verifies the sanity of accepted
// mutants more strictly: if a mutated repository loads, queries over it
// must not crash the serializer.
func TestCorruptedButLoadableStillServes(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.02, Seed: 14})
	s, err := Load(doc, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob := s.AppendBinary(nil)
	rng := rand.New(rand.NewSource(123))
	accepted := 0
	for i := 0; i < 300; i++ {
		cp := append([]byte(nil), blob...)
		cp[rng.Intn(len(cp))] ^= byte(1 + rng.Intn(255))
		s2, err := LoadBinary(cp)
		if err != nil {
			continue
		}
		accepted++
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic serializing accepted mutant: %v", r)
				}
			}()
			// Decoding may fail (values can be corrupt) but must not panic.
			_, _ = s2.Serialize(nil, 1)
		}()
	}
	t.Logf("%d of 300 single-byte mutants loaded (values may differ, structure validated)", accepted)
}
