package storage

import (
	"fmt"

	"xquec/internal/xmlparser"
)

// Shard-aware ingestion: split one XML corpus into N shard documents at
// a subtree boundary, then compress each shard independently while all
// shards share one name dictionary.
//
// The split is structural, not byte-range based. A partition level P is
// chosen (auto: the deepest of levels 2 and 3 that has elements, so an
// XMark document partitions at /site/*/* — person, open_auction,
// category, ... subtrees). Every element at level P roots a "partitioned
// subtree"; the g-th such subtree in document order is routed to shard
// g mod N (global round-robin). Everything above level P — the spine —
// is echoed into every shard, so each shard parses as a complete,
// well-formed document and its structure summary embeds into the
// original document's summary. Spine text nodes are routed to shard 0
// only (exactly one shard owns each value); spine attributes ride with
// the echoed open tags and are deliberately duplicated, because an
// attribute is part of its element tag.
//
// Round-robin routing makes the routing map implicit: shard s's k-th
// partitioned subtree (in that shard's document order) has global rank
// k*N + s, so a scatter-gather merge can restore document order from
// (shard, ordinal) alone, with no per-subtree routing table. The
// manifest only needs the shard count, the partition level and the
// per-shard subtree counts.
//
// One corpus shape is rejected: mixed content at a partition parent (a
// level P-1 element with both text children and element children).
// Splitting such an element would lose the text/subtree interleaving
// order, so the splitter fails loudly rather than silently reordering.

// ShardSplit is the outcome of splitting a document for sharded
// ingestion: the per-shard XML documents plus the metadata a shard-set
// manifest persists.
type ShardSplit struct {
	// Docs holds one well-formed XML document per shard.
	Docs [][]byte
	// Dictionary is the global name dictionary (element tags and
	// "@"-prefixed attribute names) in first-seen document order over
	// the whole corpus — the LoadOptions.Dictionary pre-seed for every
	// shard.
	Dictionary []string
	// PartitionLevel is the element level whose subtrees were routed
	// (root = level 1).
	PartitionLevel int
	// Subtrees is the total number of partitioned subtrees.
	Subtrees int
	// SubtreeCounts is the number of partitioned subtrees per shard.
	SubtreeCounts []int
}

// SplitXML splits src into `shards` well-formed XML documents at the
// auto-chosen partition level (partitionLevel 0) or the given one.
// The split is deterministic: byte-identical inputs produce
// byte-identical shard documents.
func SplitXML(src []byte, shards, partitionLevel int) (*ShardSplit, error) {
	if shards < 1 {
		return nil, fmt.Errorf("storage: shard count %d < 1", shards)
	}

	// Pass 1: collect the global first-seen name dictionary (mirroring
	// the loader's intern order: element tag, then its attributes in
	// order) and per-level element counts for the auto partition level.
	var (
		dict     []string
		dictSeen = map[string]bool{}
		depth    int
		lvlCount [4]int // elements at levels 1..3
	)
	seen := func(name string) {
		if !dictSeen[name] {
			dictSeen[name] = true
			dict = append(dict, name)
		}
	}
	p := xmlparser.NewParser(src)
	err := p.Parse(func(ev *xmlparser.Event) error {
		switch ev.Kind {
		case xmlparser.EventStartElement:
			depth++
			if depth < len(lvlCount) {
				lvlCount[depth]++
			}
			seen(ev.Name)
			for _, a := range ev.Attrs {
				seen("@" + a.Name)
			}
		case xmlparser.EventEndElement:
			depth--
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	level := partitionLevel
	if level == 0 {
		switch {
		case lvlCount[3] > 0:
			level = 3
		case lvlCount[2] > 0:
			level = 2
		default:
			return nil, fmt.Errorf("storage: document too shallow to shard (no elements below the root)")
		}
	}
	if level < 2 {
		return nil, fmt.Errorf("storage: partition level %d < 2 (the root cannot be partitioned)", level)
	}

	sp := &ShardSplit{
		Docs:           make([][]byte, shards),
		Dictionary:     dict,
		PartitionLevel: level,
		SubtreeCounts:  make([]int, shards),
	}
	bufs := make([][]byte, shards)
	for i := range bufs {
		bufs[i] = make([]byte, 0, len(src)/shards+256)
	}

	// Pass 2: route events. curShard >= 0 while inside a partitioned
	// subtree. Partition parents (level P-1) are watched for mixed
	// content.
	type parentState struct {
		text bool // emitted a text child
		part bool // emitted a partitioned element child
		name string
	}
	var (
		curShard = -1
		parents  []parentState // stack of partition-parent states, one per open level P-1 element
	)
	depth = 0
	appendOpen := func(dst []byte, ev *xmlparser.Event) []byte {
		dst = append(dst, '<')
		dst = append(dst, ev.Name...)
		for _, a := range ev.Attrs {
			dst = append(dst, ' ')
			dst = append(dst, a.Name...)
			dst = append(dst, '=', '"')
			dst = xmlparser.EscapeAttr(dst, a.Value)
			dst = append(dst, '"')
		}
		return append(dst, '>')
	}
	p = xmlparser.NewParser(src)
	err = p.Parse(func(ev *xmlparser.Event) error {
		switch ev.Kind {
		case xmlparser.EventStartElement:
			depth++
			switch {
			case curShard >= 0:
				bufs[curShard] = appendOpen(bufs[curShard], ev)
			case depth == level:
				s := sp.Subtrees % shards
				sp.Subtrees++
				sp.SubtreeCounts[s]++
				curShard = s
				bufs[s] = appendOpen(bufs[s], ev)
				if len(parents) > 0 {
					parents[len(parents)-1].part = true
				}
			default:
				for i := range bufs {
					bufs[i] = appendOpen(bufs[i], ev)
				}
				if depth == level-1 {
					parents = append(parents, parentState{name: ev.Name})
				}
			}
		case xmlparser.EventEndElement:
			switch {
			case curShard >= 0:
				bufs[curShard] = append(append(append(bufs[curShard], '<', '/'), ev.Name...), '>')
				if depth == level {
					curShard = -1
				}
			default:
				if depth == level-1 {
					ps := parents[len(parents)-1]
					parents = parents[:len(parents)-1]
					if ps.text && ps.part {
						return fmt.Errorf("storage: mixed content in <%s> at partition level %d-1: text and subtree children interleave across shards", ps.name, level)
					}
				}
				for i := range bufs {
					bufs[i] = append(append(append(bufs[i], '<', '/'), ev.Name...), '>')
				}
			}
			depth--
		case xmlparser.EventText:
			if curShard >= 0 {
				bufs[curShard] = xmlparser.EscapeText(bufs[curShard], ev.Text)
				return nil
			}
			// Spine text: shard 0 owns it (fusion reads the spine from
			// shard 0, so the value survives exactly once).
			bufs[0] = xmlparser.EscapeText(bufs[0], ev.Text)
			if depth == level-1 && len(parents) > 0 {
				parents[len(parents)-1].text = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sp.Docs = bufs
	return sp, nil
}

// LoadSharded splits src into `shards` documents (SplitXML) and
// compresses each into its own Store, all sharing the split's global
// name dictionary. Shards build in parallel under opts.Parallelism;
// the per-shard container pipeline runs serially inside each shard so
// the worker budget is not squared. Deterministic for any worker count.
func LoadSharded(src []byte, shards int, opts LoadOptions) ([]*Store, *ShardSplit, error) {
	sp, err := SplitXML(src, shards, 0)
	if err != nil {
		return nil, nil, err
	}
	shardOpts := opts
	shardOpts.Dictionary = sp.Dictionary
	shardOpts.Parallelism = 1
	stores := make([]*Store, shards)
	par := opts.Parallelism
	err = forEachIndex(par, shards, func(i int) error {
		st, err := Load(sp.Docs[i], shardOpts)
		if err != nil {
			return fmt.Errorf("storage: building shard %d: %w", i, err)
		}
		stores[i] = st
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return stores, sp, nil
}
