package storage

import (
	"sync"
	"sync/atomic"
)

// Scratch is a reusable decode buffer. Steady-state query evaluation
// decodes many values per operator call; routing those decodes through a
// pooled Scratch instead of a fresh `nil` destination makes the decode
// path allocation-free once the buffer has grown to the container's
// largest value. A Scratch must not be shared between goroutines; the
// pool hands each caller its own.
type Scratch struct {
	buf []byte
	// kids is SerializeScratch's child-collection stack: each recursion
	// level appends its children past the caller's region and truncates
	// on return, so repeated subtree serialization allocates nothing.
	kids []Kid
}

var (
	scratchPool = sync.Pool{New: func() any {
		scratchAllocs.Add(1)
		return &Scratch{buf: make([]byte, 0, 512)}
	}}
	scratchGets   atomic.Int64
	scratchAllocs atomic.Int64
)

// NewScratch returns a pooled scratch buffer. Callers should Release it
// when done so steady-state decoding allocates nothing.
func NewScratch() *Scratch {
	scratchGets.Add(1)
	return scratchPool.Get().(*Scratch)
}

// Release returns the scratch buffer to the pool. The slices previously
// returned by DecodeScratch/TextScratch alias the buffer and must not be
// used after Release.
func (s *Scratch) Release() {
	if s != nil {
		scratchPool.Put(s)
	}
}

// ScratchStats reports how many scratch buffers were handed out and how
// many had to be freshly allocated (pool misses). The gap between the
// two is the number of allocation-free reuses; the server exports both
// as decode-alloc counters.
func ScratchStats() (gets, allocs int64) {
	return scratchGets.Load(), scratchAllocs.Load()
}

// DecodeScratch decodes the i-th value into the scratch buffer and
// returns a view of it. The view is valid until the next call on the
// same Scratch (or its Release).
func (c *Container) DecodeScratch(s *Scratch, i int) ([]byte, error) {
	decodeOps.Add(1)
	var err error
	s.buf, err = c.codec.Decode(s.buf[:0], c.recs[i].Value)
	return s.buf, err
}

// decodeOps counts every value decompression in the process, whichever
// path it takes (plain Decode or DecodeScratch). It is the observable
// the streaming-result contract is tested against: stopping a result
// cursor after N items must stop the decode counter too.
var decodeOps atomic.Int64

// DecodeOps returns the process-wide number of value decodes performed
// so far. Monotonic; diff two readings to charge a code region.
func DecodeOps() int64 { return decodeOps.Load() }

// TextScratch is Text decoding into a scratch buffer (see DecodeScratch
// for the aliasing rules).
func (st *Store) TextScratch(s *Scratch, id NodeID) ([]byte, error) {
	var err error
	s.buf, err = st.Text(s.buf[:0], id)
	return s.buf, err
}
