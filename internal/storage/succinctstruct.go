package storage

import (
	"fmt"
	"iter"
	"math/bits"
	"os"

	"xquec/internal/succinct"
)

// StructureKind selects the in-memory encoding of the structure tree.
type StructureKind uint8

const (
	// StructDefault resolves to StructSuccinct unless the XQUEC_STRUCT
	// environment variable is "records".
	StructDefault StructureKind = iota
	// StructRecords is the paper's explicit per-node record array
	// (NodeRecord + parent/end/level arrays) — retained as the
	// differential oracle and escape hatch.
	StructRecords
	// StructSuccinct is the balanced-parentheses self-index: ~2-3 bits
	// per tree node instead of tens of bytes.
	StructSuccinct
)

func (k StructureKind) String() string {
	switch k {
	case StructRecords:
		return "records"
	case StructSuccinct:
		return "succinct"
	}
	return "default"
}

// resolveStructure applies the environment default. Both spellings are
// accepted explicitly; anything else falls through to the default.
func resolveStructure(k StructureKind) StructureKind {
	if k != StructDefault {
		return k
	}
	switch os.Getenv("XQUEC_STRUCT") {
	case "records":
		return StructRecords
	case "succinct":
		return StructSuccinct
	}
	return StructSuccinct
}

// Kid is one child of a node in document order: an element/attribute
// child (ID != 0) or an immediate text value (ID == 0, Val set).
type Kid struct {
	ID  NodeID
	Val ValueRef
}

// SuccinctStructure is the balanced-parentheses encoding of the
// structure tree. Every tree node — element, attribute, and each
// immediate text value — is one paren pair in pre-order, so the parens
// capture the full document shape including text interleaving. A
// second bitvector over open-paren ordinals marks which opens are
// element/attribute nodes (the ones carrying NodeIDs); the rest are
// text leaves, whose pre-order ordinal indexes the value-ref arrays.
//
//	parens:  ( ( ( ) ) ( ) )        BP bits, 1=open
//	isNode:  1 1 0 1                 per open: node or text leaf
//	tags:    per node, pre-order     = NodeID order
//	valCont/valIdx: per text leaf, pre-order
type SuccinctStructure struct {
	bp     *succinct.BP
	pv     *succinct.Bitvector // the paren bitvector (bp's backing)
	isNode *succinct.Bitvector

	tags    []uint16 // tag code per node, tags[id-1]
	valCont []int32  // container index per text leaf
	valIdx  []int32  // record index per text leaf
}

// succinctArrays is the raw (directory-free) form of the encoding: what
// persists to disk and what the builders produce before rank/select
// and rmM construction.
type succinctArrays struct {
	parens  []uint64
	nParens int
	marks   []uint64 // isNode bits over open ordinals
	nOpens  int
	tags    []uint16
	valCont []int32
	valIdx  []int32

	// Optional shortcut directories (see succinct.BuildDirs). Nil means
	// derive at build time; persisted blobs carry them so opening a
	// repository skips the sequential pass.
	excBase []int32
	anc     []int32
}

// build freezes the arrays into a navigable structure.
func (a *succinctArrays) build() *SuccinctStructure {
	pv := succinct.NewBitvector(a.parens, a.nParens)
	var bp *succinct.BP
	if a.excBase != nil {
		bp = succinct.NewBPWithDirs(pv, a.excBase, a.anc)
	} else {
		bp = succinct.NewBP(pv)
	}
	return &SuccinctStructure{
		bp:      bp,
		pv:      pv,
		isNode:  succinct.NewBitvector(a.marks, a.nOpens),
		tags:    a.tags,
		valCont: a.valCont,
		valIdx:  a.valIdx,
	}
}

// arrays returns the raw encoding (shared backing, do not mutate).
func (t *SuccinctStructure) arrays() *succinctArrays {
	excBase, anc := t.bp.Directories()
	return &succinctArrays{
		parens:  t.pv.Words(),
		nParens: t.pv.Len(),
		marks:   t.isNode.Words(),
		nOpens:  t.isNode.Len(),
		tags:    t.tags,
		valCont: t.valCont,
		valIdx:  t.valIdx,
		excBase: excBase,
		anc:     anc,
	}
}

// numNodes returns the element+attribute node count.
func (t *SuccinctStructure) numNodes() int { return t.isNode.Ones() }

// openPos returns the paren position of the node's open paren.
func (t *SuccinctStructure) openPos(id NodeID) int {
	return t.pv.Select1(t.isNode.Select1(int(id) - 1))
}

// idAtOpen returns the NodeID of the element/attribute node whose open
// paren sits at position p.
func (t *SuccinctStructure) idAtOpen(p int) NodeID {
	ord := t.pv.Rank1(p)
	return NodeID(t.isNode.Rank1(ord) + 1)
}

// parent returns the parent node (0 for the root).
func (t *SuccinctStructure) parent(id NodeID) NodeID {
	q := t.bp.Enclose(t.openPos(id))
	if q < 0 {
		return 0
	}
	return t.idAtOpen(q)
}

// subtreeEnd returns the largest NodeID inside the subtree of id: the
// number of node opens before the matching close paren. The paren rank
// at the close is derived from the open ordinal k — the subtree
// [q, c] holds exactly (c-q+1)/2 opens — saving a Rank1.
func (t *SuccinctStructure) subtreeEnd(id NodeID) NodeID {
	k := t.isNode.Select1(int(id) - 1)
	q := t.pv.Select1(k)
	c := t.bp.FindCloseAt(q, 2*(k+1)-(q+1))
	return NodeID(t.isNode.Rank1(k + (c-q+1)/2))
}

// levelOf returns the node's depth (root = 1): the excess at its open,
// which falls out of the select pair as 2*(k+1) - (q+1).
func (t *SuccinctStructure) levelOf(id NodeID) uint16 {
	k := t.isNode.Select1(int(id) - 1)
	q := t.pv.Select1(k)
	return uint16(2*(k+1) - (q + 1))
}

// kidsScanBits bounds the subtree size (in parens) below which kids
// switches from the per-kid skip loop to one sequential scan of the
// subtree's open bits. Small subtrees — the overwhelming case — then
// cost a couple of ns per open with no per-kid rank or FindClose.
const kidsScanBits = 2048

// kids yields the node's children in document order. Small subtrees
// take kidsScan; larger ones the skip loop, where the open ordinal is
// tracked incrementally — a skipped kid subtree spanning parens
// [q, c] holds exactly (c-q+1)/2 opens — so each kid costs one
// isNode rank plus one FindClose, with no paren ranks at all.
func (t *SuccinctStructure) kids(id NodeID) iter.Seq[Kid] {
	return func(yield func(Kid) bool) {
		k := t.isNode.Select1(int(id) - 1) // open ordinal of id itself
		q := t.pv.Select1(k)
		c := t.bp.FindCloseAt(q, 2*(k+1)-(q+1))
		if c-q <= kidsScanBits {
			t.kidsScan(id, k, q, c, yield)
			return
		}
		q++
		ord := k + 1
		for t.pv.Get(q) {
			if t.isNode.Get(ord) {
				if !yield(Kid{ID: NodeID(t.isNode.Rank1(ord) + 1)}) {
					return
				}
				c := t.bp.FindCloseAt(q, 2*(ord+1)-(q+1))
				ord += (c - q + 1) / 2
				q = c + 1
			} else {
				v := ord - t.isNode.Rank1(ord)
				if !yield(Kid{Val: ValueRef{Container: t.valCont[v], Index: t.valIdx[v]}}) {
					return
				}
				ord++
				q += 2 // a text leaf is always "()"
			}
		}
	}
}

// kidsScan yields the children of the node with open ordinal k at
// paren position q and close at c by scanning the subtree's open bits
// word-at-a-time. No close tracking or per-kid rank is needed: the
// excess at the ord-th open at position p is 2*(ord+1)-(p+1), so a
// child is any open one level below the node, and pre-order ID
// consecutivity makes the running counts of marked/unmarked opens the
// next NodeID and text-leaf ordinal.
func (t *SuccinctStructure) kidsScan(id NodeID, k, q, c int, yield func(Kid) bool) {
	words := t.pv.Words()
	marks := t.isNode.Words()
	ord := k + 1
	kid := int(id)        // last NodeID assigned
	vord := k + 1 - kid   // unmarked opens before ordinal k+1
	target := 2*(k+1) - q // child excess: excess(q)+1
	w := (q + 1) >> 6
	word := words[w] & (^uint64(0) << uint((q+1)&63))
	for {
		for word != 0 {
			p := w<<6 + bits.TrailingZeros64(word)
			if p >= c {
				return
			}
			word &= word - 1
			marked := marks[ord>>6]>>(uint(ord)&63)&1 == 1
			if marked {
				kid++
			}
			if 2*(ord+1)-(p+1) == target {
				if marked {
					if !yield(Kid{ID: NodeID(kid)}) {
						return
					}
				} else if !yield(Kid{Val: ValueRef{Container: t.valCont[vord], Index: t.valIdx[vord]}}) {
					return
				}
			}
			if !marked {
				vord++
			}
			ord++
		}
		w++
		if w<<6 >= c {
			return
		}
		word = words[w]
	}
}

// hasText reports whether the node has at least one immediate text
// value (for attribute nodes: the attribute value).
func (t *SuccinctStructure) hasText(id NodeID) bool {
	k := t.isNode.Select1(int(id) - 1)
	q := t.pv.Select1(k) + 1
	ord := k + 1
	for t.pv.Get(q) {
		if !t.isNode.Get(ord) {
			return true
		}
		c := t.bp.FindCloseAt(q, 2*(ord+1)-(q+1))
		ord += (c - q + 1) / 2
		q = c + 1
	}
	return false
}

// scanNodes calls fn for every node in pre-order with its depth. The
// sweep walks the paren words directly, visiting only the set bits:
// the depth at an open needs no close tracking, since the excess at
// the k-th open paren at position p is 2*(k+1)-(p+1).
func (t *SuccinctStructure) scanNodes(fn func(id NodeID, level uint16)) {
	words := t.pv.Words()
	marks := t.isNode.Words()
	ord, id := 0, 0
	for w, word := range words {
		base := w << 6
		for word != 0 {
			p := base + bits.TrailingZeros64(word)
			word &= word - 1
			if marks[ord>>6]>>(uint(ord)&63)&1 == 1 {
				id++
				fn(NodeID(id), uint16(2*(ord+1)-(p+1)))
			}
			ord++
		}
	}
}

// footprintBytes returns (bp+directories, marks, tags+valrefs) resident
// sizes — the split Footprint reports.
func (t *SuccinctStructure) footprintBytes() (bp, marks, refs int) {
	bp = t.bp.FootprintBytes()
	marks = t.isNode.FootprintBytes()
	refs = 2*len(t.tags) + 8*len(t.valCont)
	return
}

// recordsToArrays encodes the record-backed structure tree as succinct
// arrays via one pre-order walk over the child lists (which carry the
// text interleaving the parens must preserve).
func recordsToArrays(s *Store) *succinctArrays {
	nNodes := len(s.nodes)
	nLeaves := 0
	for i := range s.nodes {
		nLeaves += len(s.nodes[i].Values)
	}
	pb := succinct.NewBitBuilder(2 * (nNodes + nLeaves))
	mb := succinct.NewBitBuilder(nNodes + nLeaves)
	a := &succinctArrays{
		tags:    make([]uint16, 0, nNodes),
		valCont: make([]int32, 0, nLeaves),
		valIdx:  make([]int32, 0, nLeaves),
	}
	type frame struct {
		id   NodeID
		kidI int
	}
	open := func(id NodeID) {
		pb.Append(true)
		mb.Append(true)
		a.tags = append(a.tags, s.nodes[id-1].Tag)
	}
	stack := []frame{{id: 1}}
	open(1)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		n := &s.nodes[f.id-1]
		if f.kidI >= len(n.Kids) {
			pb.Append(false)
			stack = stack[:len(stack)-1]
			continue
		}
		k := n.Kids[f.kidI]
		f.kidI++
		if k.IsValue() {
			vr := n.Values[k.ValueIndex()]
			pb.Append(true)
			pb.Append(false)
			mb.Append(false)
			a.valCont = append(a.valCont, vr.Container)
			a.valIdx = append(a.valIdx, vr.Index)
			continue
		}
		kid := k.Node()
		open(kid)
		stack = append(stack, frame{id: kid})
	}
	a.parens, a.nParens = pb.Words(), pb.Len()
	a.marks, a.nOpens = mb.Words(), mb.Len()
	return a
}

// succinctToRecords rebuilds the record arrays from the paren walk —
// the XQUEC_STRUCT=records path for repositories read from the
// succinct persist format.
func succinctToRecords(t *SuccinctStructure) (nodes []NodeRecord, end []NodeID, level []uint16, err error) {
	nNodes := t.numNodes()
	nodes = make([]NodeRecord, nNodes)
	end = make([]NodeID, nNodes)
	level = make([]uint16, nNodes)
	var stack []NodeID
	ord, id, vord := 0, NodeID(0), 0
	n := t.pv.Len()
	for p := 0; p < n; p++ {
		if !t.pv.Get(p) {
			if len(stack) == 0 {
				return nil, nil, nil, fmt.Errorf("storage: unbalanced parens at %d", p)
			}
			end[stack[len(stack)-1]-1] = id
			stack = stack[:len(stack)-1]
			continue
		}
		if t.isNode.Get(ord) {
			id++
			nodes[id-1].Tag = t.tags[id-1]
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				nodes[id-1].Parent = parent
				nodes[parent-1].Kids = append(nodes[parent-1].Kids, NodeChild(id))
			}
			level[id-1] = uint16(len(stack) + 1)
			stack = append(stack, id)
		} else {
			if len(stack) == 0 || p+1 >= n || t.pv.Get(p+1) {
				return nil, nil, nil, fmt.Errorf("storage: malformed text leaf at %d", p)
			}
			owner := &nodes[stack[len(stack)-1]-1]
			owner.Kids = append(owner.Kids, ValueChild(len(owner.Values)))
			owner.Values = append(owner.Values,
				ValueRef{Container: t.valCont[vord], Index: t.valIdx[vord]})
			vord++
			p++ // consume the leaf's close
		}
		ord++
	}
	if len(stack) != 0 || int(id) != nNodes {
		return nil, nil, nil, fmt.Errorf("storage: truncated paren sequence")
	}
	return nodes, end, level, nil
}

// deriveFromSuccinct rebuilds everything the succinct persist section
// leaves out: the structure summary with extents and stats, the
// container index of each value ref (path-implied), and the container
// records' owner back-pointers. It is the succinct counterpart of the
// record walk in reconstructDerived, with the same validation duties —
// the input bytes are untrusted.
func (s *Store) deriveFromSuccinct() error {
	t := s.succ
	sum := &Summary{}
	s.Sum = sum
	contByPath := map[string]int32{}
	for i, c := range s.Containers {
		contByPath[c.Path] = int32(i)
	}
	fanTotal := map[int32]int{}

	type sframe struct {
		id NodeID
		sn *SummaryNode
	}
	var stack []sframe
	ord, id, vord := 0, NodeID(0), 0
	n := t.pv.Len()
	for p := 0; p < n; p++ {
		if !t.pv.Get(p) {
			if len(stack) == 0 {
				return fmt.Errorf("storage: unbalanced structure parens at %d", p)
			}
			stack = stack[:len(stack)-1]
			continue
		}
		if ord >= t.isNode.Len() {
			return fmt.Errorf("storage: more opens than node marks")
		}
		if t.isNode.Get(ord) {
			id++
			if int(id) > len(t.tags) {
				return fmt.Errorf("storage: more nodes than tags")
			}
			tagCode := t.tags[id-1]
			if int(tagCode) >= len(s.Names) {
				return fmt.Errorf("storage: node %d has unknown tag %d", id, tagCode)
			}
			tag := s.Names[tagCode]
			var psn *SummaryNode
			if len(stack) > 0 {
				psn = stack[len(stack)-1].sn
			} else if id != 1 {
				return fmt.Errorf("storage: node %d outside the root subtree", id)
			}
			sn := sum.child(psn, tag, true)
			sn.Extent = append(sn.Extent, id)
			if psn != nil && !isAttrName(tag) {
				fanTotal[psn.ID]++
			}
			stack = append(stack, sframe{id: id, sn: sn})
		} else {
			if len(stack) == 0 {
				return fmt.Errorf("storage: text leaf outside the root subtree")
			}
			if vord >= len(t.valIdx) {
				return fmt.Errorf("storage: more text leaves than value refs")
			}
			f := &stack[len(stack)-1]
			var vsn *SummaryNode
			if isAttrName(s.Names[t.tags[f.id-1]]) {
				vsn = f.sn
			} else {
				vsn = sum.child(f.sn, "#text", true)
			}
			if vsn.Container < 0 {
				ci, ok := contByPath[vsn.Path()]
				if !ok {
					return fmt.Errorf("storage: no container for path %s", vsn.Path())
				}
				vsn.Container = ci
			}
			cont := s.Containers[vsn.Container]
			idx := int(t.valIdx[vord])
			if idx >= cont.Len() {
				return fmt.Errorf("storage: node %d value index %d out of range for %s", f.id, idx, cont.Path)
			}
			if owner := cont.recs[idx].Owner; owner != 0 && owner != f.id {
				return fmt.Errorf("storage: record %d of %s claimed by nodes %d and %d", idx, cont.Path, owner, f.id)
			}
			cont.recs[idx].Owner = f.id
			t.valCont[vord] = vsn.Container
			vord++
			if p+1 >= n || t.pv.Get(p+1) {
				return fmt.Errorf("storage: malformed text leaf at %d", p)
			}
			p++ // consume the leaf's close
		}
		ord++
	}
	if len(stack) != 0 {
		return fmt.Errorf("storage: unbalanced structure parens")
	}
	if int(id) != len(t.tags) || vord != len(t.valIdx) || ord != t.isNode.Len() {
		return fmt.Errorf("storage: structure section inconsistent (%d/%d nodes, %d/%d values)",
			id, len(t.tags), vord, len(t.valIdx))
	}

	for _, sn := range sum.Nodes() {
		sn.Count = len(sn.Extent)
		if sn.Count > 0 {
			sn.AvgFan = float64(fanTotal[sn.ID]) / float64(sn.Count)
		}
	}
	return nil
}
