// Package xmarkq holds the XMark benchmark queries used throughout the
// repository (Figure 7 of the paper plus the Q8/Q9 numbers quoted in
// its text), adapted to the schema produced by internal/datagen. The
// paper's chart shows Q1, Q2, Q3, Q5, Q13, Q14, Q16 and Q20, with Q8
// and Q9 reported separately because Galax could not complete them in
// comparable time.
package xmarkq

// Query pairs a benchmark ID with its XQuery text.
type Query struct {
	ID   string
	Text string
}

// Queries returns the benchmark queries in the paper's order.
func Queries() []Query {
	return []Query{
		{"q1", Q1}, {"q2", Q2}, {"q3", Q3}, {"q5", Q5},
		{"q8", Q8}, {"q9", Q9}, {"q13", Q13}, {"q14", Q14},
		{"q16", Q16}, {"q20", Q20},
	}
}

// Q1: return the name of the person with ID person0 (exact-match
// attribute lookup).
const Q1 = `FOR $b IN document("auction.xml")/site/people/person[@id = "person0"]
RETURN $b/name/text()`

// Q2: return the initial increases of all open auctions (positional
// predicate).
const Q2 = `FOR $b IN document("auction.xml")/site/open_auctions/open_auction
RETURN <increase>{$b/bidder[1]/increase/text()}</increase>`

// Q3: return the IDs of auctions whose first increase is at most half
// the last one (two positional predicates plus arithmetic).
const Q3 = `FOR $b IN document("auction.xml")/site/open_auctions/open_auction
WHERE count($b/bidder) > 0 AND number($b/bidder[1]/increase/text()) * 2 <= number($b/bidder[last()]/increase/text())
RETURN <increase id="{$b/@id}" first="{$b/bidder[1]/increase/text()}" last="{$b/bidder[last()]/increase/text()}"/>`

// Q5: how many sold items cost more than 40 (aggregate over an
// inequality on a decimal container).
const Q5 = `count(FOR $i IN document("auction.xml")/site/closed_auctions/closed_auction
WHERE $i/price >= 40
RETURN $i/price)`

// Q8: list the names of persons and the number of items they bought
// (correlated join on IDREFs).
const Q8 = `FOR $p IN document("auction.xml")/site/people/person
LET $a := FOR $t IN document("auction.xml")/site/closed_auctions/closed_auction
          WHERE $t/buyer/@person = $p/@id
          RETURN $t
RETURN <item person="{$p/name/text()}">{count($a)}</item>`

// Q9: list the names of persons and the names of the European items
// they bought (three-way join, the Fig. 5 plan).
const Q9 = `FOR $p IN document("auction.xml")/site/people/person
LET $a := FOR $t IN document("auction.xml")/site/closed_auctions/closed_auction,
              $t2 IN document("auction.xml")/site/regions/europe/item
          WHERE $t/itemref/@item = $t2/@id AND $p/@id = $t/buyer/@person
          RETURN <item>{$t2/name/text()}</item>
RETURN <person name="{$p/name/text()}">{$a}</person>`

// Q13: list the names of Australian items with their descriptions
// (result reconstruction of whole subtrees).
const Q13 = `FOR $i IN document("auction.xml")/site/regions/australia/item
RETURN <item name="{$i/name/text()}">{$i/description}</item>`

// Q14: return the names of all items whose description contains the
// word "gold" (descendant axis plus full-text predicate, the §2.3
// example).
const Q14 = `FOR $i IN document("auction.xml")/site//item
WHERE contains($i/description, "gold")
RETURN $i/name/text()`

// Q16: references: for every closed auction, the seller's name resolved
// through the IDREF (parent-child-join-heavy query; the paper notes
// XQueC is slightly worse than Galax on this class because of the many
// parent-child joins its data model imposes).
const Q16 = `FOR $a IN document("auction.xml")/site/closed_auctions/closed_auction
LET $n := FOR $p IN document("auction.xml")/site/people/person
          WHERE $p/@id = $a/seller/@person
          RETURN $p/name/text()
RETURN <reference item="{$a/itemref/@item}">{$n}</reference>`

// Q20: group customers by income brackets (aggregates over range
// predicates on a decimal attribute).
const Q20 = `<result>
 <preferred>{count(document("auction.xml")/site/people/person/profile[@income >= 65000])}</preferred>
 <standard>{count(document("auction.xml")/site/people/person/profile[@income >= 30000 AND @income < 65000])}</standard>
 <challenge>{count(document("auction.xml")/site/people/person/profile[@income < 30000])}</challenge>
</result>`

// ExtendedQueries returns additional XMark queries beyond the paper's
// Figure-7 chart, used for differential testing and wider workload
// coverage.
func ExtendedQueries() []Query {
	return []Query{
		{"q6", Q6}, {"q7", Q7}, {"q11", Q11}, {"q17", Q17}, {"q19", Q19},
	}
}

// Q6: how many items are listed on all continents (descendant counting
// under each region).
const Q6 = `FOR $b IN document("auction.xml")/site/regions RETURN count($b//item)`

// Q7: how many pieces of prose are in the database.
const Q7 = `count(document("auction.xml")/site//description) +
count(document("auction.xml")/site//annotation) +
count(document("auction.xml")/site//emailaddress)`

// Q11: for each person, the number of open auctions whose initial price
// the person's income would cover 5000 times over (value theta-join
// with arithmetic).
const Q11 = `FOR $p IN document("auction.xml")/site/people/person
LET $l := FOR $i IN document("auction.xml")/site/open_auctions/open_auction/initial
          WHERE number($p/profile/@income) > 5000 * number($i/text())
          RETURN $i
RETURN <items name="{$p/name/text()}">{count($l)}</items>`

// Q17: which persons don't have a homepage.
const Q17 = `FOR $p IN document("auction.xml")/site/people/person
WHERE empty($p/homepage/text())
RETURN <person name="{$p/name/text()}"/>`

// Q19: give an alphabetically ordered list of all items along with
// their location.
const Q19 = `FOR $b IN document("auction.xml")/site/regions//item
LET $k := $b/name/text()
ORDER BY $b/location
RETURN <item name="{$k}">{$b/location/text()}</item>`
