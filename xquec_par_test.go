package xquec

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"xquec/internal/algebra"
)

// parDB builds a repository large enough to exercise the partitioned
// operators: many <e> entries with prose values and several sections so
// //e predicates fan out over multiple containers.
func parDB(t testing.TB) *Database {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<doc>")
	for sec := 0; sec < 3; sec++ {
		fmt.Fprintf(&sb, "<s%d>", sec)
		for i := 0; i < 120; i++ {
			fmt.Fprintf(&sb, "<e><k>key%03d</k><v>value %d body %d</v></e>", i, i%37, i%11)
		}
		fmt.Fprintf(&sb, "</s%d>", sec)
	}
	sb.WriteString("</doc>")
	db, err := Compress([]byte(sb.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var parQueries = []string{
	`count(//e[v = "value 3 body 5"])`,
	`//e[v != "value 0 body 0"]/k/text()`,
	`FOR $e IN //e WHERE $e/k = "key007" RETURN $e/v/text()`,
	`count(/doc/s1/e)`,
	`(count(//e), count(//k))`,
}

// lowParFloors drops the algebra partition floors for the test's
// duration so the modest fixture actually splits.
func lowParFloors(t testing.TB) {
	oldR, oldN := algebra.MinRecordsPerPartition, algebra.MinNodesPerPartition
	algebra.MinRecordsPerPartition, algebra.MinNodesPerPartition = 2, 2
	t.Cleanup(func() {
		algebra.MinRecordsPerPartition, algebra.MinNodesPerPartition = oldR, oldN
	})
}

// render streams a query's results through WriteXML, the same path the
// CLI and server use.
func render(db *Database, q string, par int) ([]byte, error) {
	res, err := db.QueryWith(context.Background(), q, QueryOptions{Parallelism: par})
	if err != nil {
		return nil, err
	}
	defer res.Close()
	var buf bytes.Buffer
	if _, err := res.WriteXML(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestQueryParallelismByteIdentical checks the public contract: every
// Parallelism setting streams byte-identical output.
func TestQueryParallelismByteIdentical(t *testing.T) {
	lowParFloors(t)
	db := parDB(t)
	for _, q := range parQueries {
		want, err := render(db, q, 1)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, par := range []int{0, 2, 4, runtime.GOMAXPROCS(0)} {
			got, err := render(db, q, par)
			if err != nil {
				t.Fatalf("%s par=%d: %v", q, par, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s par=%d differs:\npar:    %q\nserial: %q", q, par, got, want)
			}
		}
	}
}

// TestConcurrentParallelQueries hammers one shared Database from many
// goroutines, each running parallel (par>1) queries, and checks every
// streamed result against the serial baseline. Run under -race this is
// the data-race canary for the intra-query worker pool.
func TestConcurrentParallelQueries(t *testing.T) {
	lowParFloors(t)
	db := parDB(t)
	want := make(map[string][]byte, len(parQueries))
	for _, q := range parQueries {
		w, err := render(db, q, 1)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want[q] = w
	}

	const goroutines = 16
	const iters = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := parQueries[(g+i)%len(parQueries)]
				par := 2 + (g+i)%3
				got, err := render(db, q, par)
				if err != nil {
					errc <- fmt.Errorf("%s par=%d: %v", q, par, err)
					return
				}
				if !bytes.Equal(got, want[q]) {
					errc <- fmt.Errorf("%s par=%d: output differs from serial", q, par)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPreparedRunWithParallelism checks the prepared-query path carries
// the option through.
func TestPreparedRunWithParallelism(t *testing.T) {
	lowParFloors(t)
	db := parDB(t)
	prep, err := db.Prepare(parQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	var outs [][]byte
	for _, par := range []int{1, 4} {
		res, err := prep.RunWith(context.Background(), QueryOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := res.WriteXML(&buf); err != nil {
			t.Fatal(err)
		}
		res.Close()
		outs = append(outs, buf.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("prepared parallel output differs: %q vs %q", outs[0], outs[1])
	}
}
