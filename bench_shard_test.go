package xquec

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xquec/internal/datagen"
	"xquec/internal/experiments"
)

// shardBenchDBs lazily builds one repository per shard count over the
// same corpus (shards=0 is the unsharded baseline), shared by all the
// scatter-gather benchmarks.
var shardBenchDBs = struct {
	once sync.Once
	dbs  map[int]*Database
	err  error
}{}

func shardBenchRepo(b *testing.B, shards int) *Database {
	b.Helper()
	shardBenchDBs.once.Do(func() {
		doc := datagen.XMark(datagen.XMarkConfig{Scale: 4 * benchScale, Seed: experiments.Seed})
		shardBenchDBs.dbs = map[int]*Database{}
		for _, n := range []int{0, 1, 2, 4, 8} {
			var db *Database
			var err error
			if n == 0 {
				db, err = Compress(doc, Options{})
			} else {
				db, err = CompressSharded(doc, n, Options{})
			}
			if err != nil {
				shardBenchDBs.err = err
				return
			}
			shardBenchDBs.dbs[n] = db
		}
	})
	if shardBenchDBs.err != nil {
		b.Fatal(shardBenchDBs.err)
	}
	return shardBenchDBs.dbs[shards]
}

func runShardQuery(b *testing.B, q string) {
	for _, shards := range []int{0, 1, 2, 4, 8} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "unsharded"
		}
		db := shardBenchRepo(b, shards)
		b.Run(name, func(b *testing.B) {
			// Warm up once untimed: the fallback path fuses the corpus
			// lazily (sync.Once) on its first query, a one-time cost that
			// would otherwise be billed to iteration 0.
			if res, err := db.Query(q); err == nil {
				res.Len()
				res.Close()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.QueryWith(context.Background(), q, QueryOptions{})
				if err != nil {
					b.Fatal(err)
				}
				for {
					_, ok, err := res.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
				}
				res.Close()
			}
		})
	}
}

// BenchmarkShardScatter drives the full scatter-gather path on a
// scatterable query: per-shard evaluation through the worker boundary,
// rank stamping, and the k-way ordered merge. The unsharded row is the
// single-store baseline; on a single-core host the sharded rows
// measure coordination + merge overhead (speedups need real cores, as
// with bench-par).
func BenchmarkShardScatter(b *testing.B) {
	runShardQuery(b,
		`FOR $p IN document("auction.xml")/site/people/person RETURN $p/name/text()`)
}

// BenchmarkShardFallback drives the fused-fallback path: a whole-corpus
// aggregate the analyzer declines to scatter, answered on the lazily
// fused store. The one-time fuse happens in the untimed warm-up, so
// the steady-state cost must track the unsharded baseline.
func BenchmarkShardFallback(b *testing.B) {
	runShardQuery(b, `count(/site//item)`)
}
