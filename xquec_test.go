package xquec

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xquec/internal/datagen"
	"xquec/internal/xmarkq"
)

const apiDoc = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>25</age></person>
  </people>
  <closed_auctions>
    <closed_auction><buyer person="p1"/><price>19.99</price></closed_auction>
    <closed_auction><buyer person="p0"/><price>55.00</price></closed_auction>
  </closed_auctions>
</site>`

func TestCompressAndQuery(t *testing.T) {
	db, err := Compress([]byte(apiDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`FOR $p IN document("d")/site/people/person WHERE $p/age >= 28 RETURN $p/name/text()`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.SerializeXML()
	if err != nil {
		t.Fatal(err)
	}
	if out != "Alice" {
		t.Fatalf("result = %q", out)
	}
	if res.Len() != 1 {
		t.Fatalf("Len = %d", res.Len())
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	db, err := Compress([]byte(apiDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/db.xqc"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.MustQuery(`count(/site//person)`).SerializeXML()
	b, _ := db2.MustQuery(`count(/site//person)`).SerializeXML()
	if a != b || a != "2" {
		t.Fatalf("round trip results %q vs %q", a, b)
	}
	db3, err := OpenBytes(db.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := db3.MustQuery(`count(/site//person)`).SerializeXML(); c != "2" {
		t.Fatalf("OpenBytes result %q", c)
	}
}

func TestWorkloadDrivenCompression(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.05, Seed: 41})
	var w Workload
	w.IneqConst("/site/closed_auctions/closed_auction/annotation/description/text/#text")
	w.EqJoin("/site/people/person/@id", "/site/closed_auctions/closed_auction/buyer/@person")
	db, err := Compress(doc, Options{Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	// The joined containers should land in one source-model group so
	// the join can run as a compressed merge join.
	var g1, g2 string
	for _, c := range db.Containers() {
		switch c.Path {
		case "/site/people/person/@id":
			g1 = c.Group
		case "/site/closed_auctions/closed_auction/buyer/@person":
			g2 = c.Group
		}
	}
	if g1 == "" || g2 == "" {
		t.Fatal("containers missing")
	}
	if g1 != g2 {
		t.Logf("note: cost model kept join sides separate (%s vs %s)", g1, g2)
	}
	// Queries still work under the tuned plan.
	res, err := db.Query(`count(/site/people/person)`)
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := res.SerializeXML(); out == "0" {
		t.Fatal("no persons")
	}
}

func TestStatsAndContainers(t *testing.T) {
	db, err := Compress([]byte(apiDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.OriginalBytes != len(apiDoc) || st.CompressedBytes <= 0 || st.Nodes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "containers=") {
		t.Fatalf("stats string = %s", st)
	}
	cs := db.Containers()
	if len(cs) == 0 {
		t.Fatal("no containers")
	}
	seenDecimal := false
	for _, c := range cs {
		if c.Kind == "decimal" {
			seenDecimal = true
		}
		if c.Algorithm == "" || c.Records <= 0 {
			t.Fatalf("container %+v", c)
		}
	}
	if !seenDecimal {
		t.Fatal("price container should be decimal-typed")
	}
}

func TestParseQuery(t *testing.T) {
	if err := ParseQuery(`for $x in /a return $x`); err != nil {
		t.Fatal(err)
	}
	if err := ParseQuery(`for $x in`); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestCompressErrors(t *testing.T) {
	if _, err := Compress([]byte("<a></b>"), Options{}); err == nil {
		t.Fatal("malformed XML accepted")
	}
	if _, err := Open(t.TempDir() + "/missing.xqc"); err == nil {
		t.Fatal("missing file opened")
	}
	if _, err := OpenBytes([]byte("junk")); err == nil {
		t.Fatal("junk opened")
	}
}

func TestExplicitPlan(t *testing.T) {
	plan := &CompressionPlan{DefaultAlgorithm: "huffman"}
	db, err := Compress([]byte(apiDoc), Options{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range db.Containers() {
		if c.Kind == "string" && c.Algorithm != "huffman" {
			t.Fatalf("container %s uses %s", c.Path, c.Algorithm)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.05, Seed: 51})
	db, err := Compress(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`count(/site//item)`,
		`FOR $p IN /site/people/person WHERE $p/profile/age >= 40 RETURN $p/name/text()`,
		`FOR $p IN /site/people/person
		 LET $a := FOR $t IN /site/closed_auctions/closed_auction
		           WHERE $t/buyer/@person = $p/@id RETURN $t
		 RETURN count($a)`,
		`sum(/site/closed_auctions/closed_auction/price)`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		r, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = r.SerializeXML()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				qi := (w + i) % len(queries)
				r, err := db.Query(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				out, err := r.SerializeXML()
				if err != nil {
					errs <- err
					return
				}
				if out != want[qi] {
					errs <- fmt.Errorf("query %d result changed under concurrency", qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestWorkloadQueriesEndToEnd(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.1, Seed: 61})
	var texts []string
	for _, q := range xmarkq.Queries() {
		texts = append(texts, q.Text)
	}
	db, err := Compress(doc, Options{WorkloadQueries: texts})
	if err != nil {
		t.Fatal(err)
	}
	// The Q8/Q9 IDREF join sides should share one source-model group so
	// the join runs as a compressed merge join.
	groupOf := map[string]string{}
	for _, c := range db.Containers() {
		groupOf[c.Path] = c.Group
	}
	a := groupOf["/site/people/person/@id"]
	b := groupOf["/site/closed_auctions/closed_auction/buyer/@person"]
	if a == "" || b == "" {
		t.Fatal("join containers missing")
	}
	if a != b {
		t.Logf("note: cost model kept join sides apart (%s vs %s)", a, b)
	}
	// Queries agree with a blind-compressed database.
	blind, err := Compress(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{xmarkq.Q1, xmarkq.Q5, xmarkq.Q8} {
		r1, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := blind.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		s1, _ := r1.SerializeXML()
		s2, _ := r2.SerializeXML()
		if s1 != s2 {
			t.Fatalf("tuned and blind databases disagree on %.40q", q)
		}
	}
}
