package xquec_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xquec"
	"xquec/internal/datagen"
	"xquec/internal/xmarkq"
)

// TestShardedResultsIdentical is the tier-1 guarantee of the
// scatter-gather tier: for EVERY benchmark query — scattered or
// fallback — a sharded database returns byte-identical results to the
// single-repository database over the same corpus, at every shard
// count.
func TestShardedResultsIdentical(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.05, Seed: 41})
	single, err := xquec.Compress(doc, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := append(xmarkq.Queries(), xmarkq.ExtendedQueries()...)
	want := map[string]string{}
	for _, q := range queries {
		res, err := single.Query(q.Text)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		want[q.ID], err = res.SerializeXML()
		res.Close()
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		db, err := xquec.CompressSharded(doc, shards, xquec.Options{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for _, q := range queries {
			res, err := db.Query(q.Text)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, q.ID, err)
			}
			got, err := res.SerializeXML()
			res.Close()
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, q.ID, err)
			}
			if got != want[q.ID] {
				t.Errorf("shards=%d %s: sharded result differs\n got: %.200q\nwant: %.200q",
					shards, q.ID, got, want[q.ID])
			}
			if res.Partial() {
				t.Errorf("shards=%d %s: healthy query reported partial", shards, q.ID)
			}
		}
	}
}

// TestShardedItemCursor exercises the Next/Item path (not just
// WriteXML) against a scattered query, including early Close.
func TestShardedItemCursor(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.05, Seed: 42})
	db, err := xquec.CompressSharded(doc, 4, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := xquec.Compress(doc, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const q = `FOR $p IN document("auction.xml")/site/people/person RETURN $p/name/text()`
	wantRes, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	defer wantRes.Close()
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	n := 0
	for {
		wi, wok, werr := wantRes.Next()
		gi, gok, gerr := res.Next()
		if werr != nil || gerr != nil {
			t.Fatalf("item %d: errs %v / %v", n, werr, gerr)
		}
		if wok != gok {
			t.Fatalf("item %d: ok %v vs %v", n, wok, gok)
		}
		if !wok {
			break
		}
		wx, _ := wi.XML()
		gx, _ := gi.XML()
		if wx != gx {
			t.Fatalf("item %d: %q vs %q", n, gx, wx)
		}
		n++
	}
	if n == 0 {
		t.Fatal("query returned nothing")
	}

	// Early close mid-stream must not deadlock or error later cursors.
	res2, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := res2.Next(); !ok || err != nil {
		t.Fatalf("first item: ok=%v err=%v", ok, err)
	}
	if err := res2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSaveOpenRoundTrip persists a shard set and re-opens it
// through the sniffing Open, asserting results survive the round trip.
func TestShardedSaveOpenRoundTrip(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.02, Seed: 43})
	db, err := xquec.CompressSharded(doc, 3, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const q = `FOR $i IN document("auction.xml")/site/regions/australia/item RETURN $i/name/text()`
	want := mustXML(t, db, q)

	dir := t.TempDir()
	path := filepath.Join(dir, "auction.xqcs")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := xquec.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Sharded() || re.Shards() != 3 {
		t.Fatalf("reopened: sharded=%v shards=%d", re.Sharded(), re.Shards())
	}
	if got := mustXML(t, re, q); got != want {
		t.Fatalf("round trip changed results:\n got %.200q\nwant %.200q", got, want)
	}
	if re.TopologyKey() == db.TopologyKey() {
		t.Fatal("distinct instances share a topology key")
	}
	// Both keys must agree on the topology part (after the instance id).
	suffix := func(k string) string { return k[strings.Index(k, ";"):] }
	if suffix(re.TopologyKey()) != suffix(db.TopologyKey()) {
		t.Fatalf("same layout, different topology: %q vs %q", re.TopologyKey(), db.TopologyKey())
	}
}

// TestShardedDecompress asserts the fused reconstruction round-trips
// through the sharded layout.
func TestShardedDecompress(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.02, Seed: 44})
	single, err := xquec.Compress(doc, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := xquec.CompressSharded(doc, 4, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstructions may differ in empty-element form; compare through
	// a re-ingest of each, which canonicalizes serialization.
	cw, err := xquec.Compress(want, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := xquec.Compress(got, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := cw.Decompress()
	g2, _ := cg.Decompress()
	if string(w2) != string(g2) {
		t.Fatalf("fused reconstruction differs (%d vs %d bytes)", len(g2), len(w2))
	}
}

// TestShardedDeadline proves per-request deadlines cut through a
// scattered evaluation: an already-expired context fails the query with
// the context's error even under the partial-results policy.
func TestShardedDeadline(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.02, Seed: 45})
	db, err := xquec.CompressSharded(doc, 4, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	const q = `FOR $p IN document("auction.xml")/site/people/person RETURN $p/name/text()`
	res, err := db.QueryWith(ctx, q, xquec.QueryOptions{PartialResults: true})
	if err == nil {
		// The deadline may surface on the first Next instead of at
		// prime time depending on scheduling; drain to find it.
		_, err = res.SerializeXML()
		res.Close()
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func mustXML(t *testing.T, db *xquec.Database, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	out, err := res.SerializeXML()
	if err != nil {
		t.Fatal(err)
	}
	return out
}
