package xquec_test

import (
	"context"
	"os"
	"testing"

	"xquec"
	"xquec/internal/datagen"
	"xquec/internal/xmarkq"
)

// evalWith runs one query at the given parallelism and returns the
// serialized result (engine selection follows XQUEC_EVAL, read at run
// time).
func evalWith(db *xquec.Database, query string, par int) (string, error) {
	res, err := db.QueryWith(context.Background(), query, xquec.QueryOptions{Parallelism: par})
	if err != nil {
		return "", err
	}
	defer res.Close()
	return res.SerializeXML()
}

// TestVMDifferentialMatrix is the top-level correctness gate for the
// compiled-plan engine: every benchmark query, at every shard count in
// {1, 2, 4, 8} and intra-query parallelism in {1, 4}, must produce
// byte-identical output (and identical errors) on the stack VM and the
// tree-walking oracle. Sharded databases exercise the worker-side
// per-shard programs; the fused/scatter split is whatever the analyzer
// decides, identically for both engines.
func TestVMDifferentialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow under -short")
	}
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.03, Seed: 91})
	queries := append(xmarkq.Queries(), xmarkq.ExtendedQueries()...)

	// Register env restoration, then toggle per-run: Enabled() reads
	// XQUEC_EVAL at evaluation time, so the same Database serves both
	// engines.
	t.Setenv("XQUEC_EVAL", "")

	for _, shards := range []int{1, 2, 4, 8} {
		var db *xquec.Database
		var err error
		if shards == 1 {
			db, err = xquec.Compress(doc, xquec.Options{})
		} else {
			db, err = xquec.CompressSharded(doc, shards, xquec.Options{})
		}
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for _, par := range []int{1, 4} {
			for _, q := range queries {
				os.Setenv("XQUEC_EVAL", "")
				vmOut, vmErr := evalWith(db, q.Text, par)
				os.Setenv("XQUEC_EVAL", "tree")
				treeOut, treeErr := evalWith(db, q.Text, par)
				if (vmErr == nil) != (treeErr == nil) {
					t.Fatalf("shards=%d par=%d %s: vm err=%v, tree err=%v",
						shards, par, q.ID, vmErr, treeErr)
				}
				if vmErr != nil && vmErr.Error() != treeErr.Error() {
					t.Fatalf("shards=%d par=%d %s: vm err %q, tree err %q",
						shards, par, q.ID, vmErr, treeErr)
				}
				if vmOut != treeOut {
					t.Fatalf("shards=%d par=%d %s: output mismatch\n--- vm ---\n%.400s\n--- tree ---\n%.400s",
						shards, par, q.ID, vmOut, treeOut)
				}
			}
		}
	}
}

// TestEvalEngineSwitch pins the XQUEC_EVAL contract: default is the
// compiled VM, "tree" selects the oracle, and both answer queries.
func TestEvalEngineSwitch(t *testing.T) {
	t.Setenv("XQUEC_EVAL", "")
	if xquec.EvalEngine() != "vm" {
		t.Fatalf("default engine = %q", xquec.EvalEngine())
	}
	os.Setenv("XQUEC_EVAL", "tree")
	if xquec.EvalEngine() != "tree" {
		t.Fatalf("XQUEC_EVAL=tree engine = %q", xquec.EvalEngine())
	}
	os.Setenv("XQUEC_EVAL", "")

	db, err := xquec.Compress([]byte(`<doc><a>1</a><a>2</a></doc>`), xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(`count(/doc/a)`)
	if err != nil {
		t.Fatal(err)
	}
	if prep.EngineLabel() != "vm" || prep.ProgramLen() == 0 {
		t.Fatalf("prepared: engine=%q len=%d", prep.EngineLabel(), prep.ProgramLen())
	}
	if prep.CostBytes() <= 0 {
		t.Fatalf("CostBytes = %d", prep.CostBytes())
	}
	if dis := prep.Disassemble(); dis == "" {
		t.Fatal("empty disassembly for a compiled plan")
	}
	res, err := prep.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.SerializeXML()
	res.Close()
	if err != nil || out != "2" {
		t.Fatalf("vm result = %q, %v", out, err)
	}
}
