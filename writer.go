package xquec

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"xquec/internal/segment"
	"xquec/internal/storage"
)

// Writer is the repository write path: Append stages documents, Commit
// ingests each staged document as its own append segment (sharing the
// repository's interned name dictionary) and publishes a new Database
// handle, Compact folds every segment back into a single freshly
// partitioned base segment. The underlying databases stay immutable —
// each Commit/Compact builds a new segment set and swaps the Writer's
// current handle, so readers holding an older handle keep a fully
// consistent snapshot for as long as they like.
//
// A Writer serializes its own operations (Append, Commit and Compact
// may be called from any goroutine) but there must be only one Writer
// per repository: two Writers over the same repository would each
// build private successor sets and the later Commit would silently
// drop the earlier one's segments.
//
// Appended documents must have the repository's root tag, and their
// root element must carry no attributes — the appended root is spliced
// away in the logical corpus (its children become children of the base
// root), so there is nowhere for its attributes to live.
type Writer struct {
	mu      sync.Mutex
	db      *Database
	opts    Options
	pending [][]byte
	path    string
	onSwap  func(*Database)
}

// NewWriter opens the write path over db. A plain single-repository
// database is adopted as the base segment of a fresh single-segment
// set (queries over the returned Writer's handle behave identically);
// a database opened from a segment-set manifest continues its set.
// Sharded databases are not appendable. opts drives the compression of
// future appends and compactions — Options.Shards is ignored (segments
// are the write-path partitioning; a compacted set can be re-sharded
// by re-compressing the decompressed corpus).
func NewWriter(db *Database, opts Options) (*Writer, error) {
	if db.set != nil {
		return nil, fmt.Errorf("xquec: a sharded database is not appendable; compact to a single repository first")
	}
	if db.segs == nil {
		segs, err := segment.NewBase(db.store)
		if err != nil {
			return nil, err
		}
		db = fromSegs(segs)
	}
	return &Writer{db: db, opts: opts}, nil
}

// DB returns the Writer's current Database handle (the latest
// committed state). The handle is immutable and safe to hold across
// later commits — it just stops reflecting them.
func (w *Writer) DB() *Database {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.db
}

// BindFile binds the Writer to a manifest path: every successful
// Commit and Compact persists the new set there (segment files are
// written next to it, superseded ones are garbage-collected). A ".xqcg"
// extension is appended when missing.
func (w *Writer) BindFile(path string) {
	if !strings.HasSuffix(path, segment.ManifestExt) {
		path += segment.ManifestExt
	}
	w.mu.Lock()
	w.path = path
	w.mu.Unlock()
}

// OnSwap registers a hook invoked (under the Writer's lock) with each
// newly published Database — the integration point for a serving pool
// that must swap its repository entry atomically.
func (w *Writer) OnSwap(fn func(*Database)) {
	w.mu.Lock()
	w.onSwap = fn
	w.mu.Unlock()
}

// Append stages doc for the next Commit. The document is validated
// (well-formed root, matching root tag, attribute-free root) but not
// ingested; the bytes are copied, so the caller may reuse the buffer.
func (w *Writer) Append(doc []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.db.segs.CheckAppend(doc); err != nil {
		return err
	}
	w.pending = append(w.pending, append([]byte(nil), doc...))
	return nil
}

// Pending returns the number of staged, not-yet-committed documents.
func (w *Writer) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// Commit ingests every staged document as an append segment and
// publishes the grown Database (also returned). Each appended
// document's compression plan is resolved independently under the
// Writer's Options. With nothing staged, Commit is a no-op returning
// the current handle. On error nothing is published and the staged
// documents remain staged.
func (w *Writer) Commit() (*Database, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commitLocked()
}

func (w *Writer) commitLocked() (*Database, error) {
	if len(w.pending) == 0 {
		return w.db, nil
	}
	segs := w.db.segs
	for _, doc := range w.pending {
		plan, err := resolvePlan(doc, w.opts)
		if err != nil {
			return nil, err
		}
		segs, err = segs.Append([][]byte{doc}, storage.LoadOptions{Plan: plan, Parallelism: w.opts.Parallelism})
		if err != nil {
			return nil, err
		}
	}
	return w.publishLocked(segs)
}

// Compact commits any staged documents, then folds the whole set into
// a single fresh base segment: the concatenated corpus is re-ingested
// with the cost-model partitioner re-run over the union (under the
// Writer's Options), and the compacted Database is published. Readers
// of previously returned handles are unaffected — their segment set is
// immutable. ctx is checked between the fuse, plan-search and
// re-ingest phases.
func (w *Writer) Compact(ctx context.Context) (*Database, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.commitLocked(); err != nil {
		return nil, err
	}
	segs := w.db.segs
	if segs.Segments() == 1 {
		return w.db, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	xml, err := segs.FuseXML()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := resolvePlan(xml, w.opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	compacted, err := segs.Compact(xml, storage.LoadOptions{Plan: plan, Parallelism: w.opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return w.publishLocked(compacted)
}

// publishLocked persists (when bound to a file), swaps the current
// handle, clears the staging area and notifies the swap hook.
func (w *Writer) publishLocked(segs *segment.Set) (*Database, error) {
	if w.path != "" {
		if err := segs.Save(w.path); err != nil {
			return nil, err
		}
	}
	db := fromSegs(segs)
	w.pending = nil
	w.db = db
	if w.onSwap != nil {
		w.onSwap(db)
	}
	return db, nil
}
