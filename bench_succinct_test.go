package xquec_test

import (
	"context"
	"fmt"
	"testing"

	"xquec"
	"xquec/internal/algebra"
	"xquec/internal/datagen"
	"xquec/internal/storage"
	"xquec/internal/xmarkq"
)

// The succinct-structure benchmarks compare the two structure backends
// head-to-head over the same XMark corpus: resident structure memory
// (bits per tree node) and the hot navigation operators the BP
// self-index replaces record-array lookups in.

const succinctBenchScale = 0.1

var structureBackends = []struct {
	name string
	kind storage.StructureKind
}{
	{"records", storage.StructRecords},
	{"succinct", storage.StructSuccinct},
}

func succinctBenchStore(b *testing.B, kind storage.StructureKind) *storage.Store {
	b.Helper()
	doc := datagen.XMark(datagen.XMarkConfig{Scale: succinctBenchScale, Seed: 17})
	s, err := storage.Load(doc, storage.LoadOptions{Structure: kind})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// tagExtent returns every element node with the given tag, in document
// order.
func tagExtent(s *storage.Store, tag string) algebra.NodeSet {
	code, ok := s.Code(tag)
	if !ok {
		return nil
	}
	var out algebra.NodeSet
	s.ScanNodes(func(id storage.NodeID, _ uint16) {
		if s.TagCodeOf(id) == code {
			out = append(out, id)
		}
	})
	return out
}

// BenchmarkSuccinctMemory reports the resident structure encoding of
// each backend: total repository bytes, the shape-encoding share, and
// its density in bits per tree node (elements + attributes + text
// values). The op under timing is a full ingest, so ns/op also tracks
// the succinct construction cost.
func BenchmarkSuccinctMemory(b *testing.B) {
	for _, bk := range structureBackends {
		b.Run(bk.name, func(b *testing.B) {
			var s *storage.Store
			for i := 0; i < b.N; i++ {
				s = succinctBenchStore(b, bk.kind)
			}
			f := s.Footprint()
			bpBits, markBits, treeNodes := s.StructureStats()
			if bk.kind == storage.StructRecords {
				// Count text values the same way the succinct side does.
				nLeaves := 0
				s.ScanNodes(func(id storage.NodeID, _ uint16) {
					for k := range s.Kids(id) {
						if k.ID == 0 {
							nLeaves++
						}
					}
				})
				treeNodes = s.NumNodes() + nLeaves
				shape := f.StructureTree + f.ParentPointers + f.BPlusIndex -
					2*s.NumNodes() - 8*nLeaves // minus tags and value refs
				b.ReportMetric(float64(8*shape)/float64(treeNodes), "bits/node")
				b.ReportMetric(float64(shape), "shapeB")
			} else {
				b.ReportMetric(float64(bpBits)/float64(treeNodes), "bits/node")
				b.ReportMetric(float64((bpBits+markBits)/8), "shapeB")
			}
			b.ReportMetric(float64(f.Total()), "residentB")
		})
	}
}

// BenchmarkSuccinctDescendants measures the descendant interval merge
// — subtree-boundary (FindClose) lookups on the succinct backend —
// restricting the full item extent to the subtrees of every region.
func BenchmarkSuccinctDescendants(b *testing.B) {
	for _, bk := range structureBackends {
		b.Run(bk.name, func(b *testing.B) {
			s := succinctBenchStore(b, bk.kind)
			regions := tagExtent(s, "regions")
			items := tagExtent(s, "item")
			if len(regions) == 0 || len(items) == 0 {
				b.Fatal("empty inputs")
			}
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(algebra.Descendants(s, regions, items))
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
		})
	}
}

// BenchmarkSuccinctParent measures the parent step — Enclose on the
// succinct backend — over the full item extent.
func BenchmarkSuccinctParent(b *testing.B) {
	for _, bk := range structureBackends {
		b.Run(bk.name, func(b *testing.B) {
			s := succinctBenchStore(b, bk.kind)
			items := tagExtent(s, "item")
			if len(items) == 0 {
				b.Fatal("no items")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.Parent(s, items)
			}
			b.ReportMetric(float64(len(items))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
		})
	}
}

// BenchmarkSuccinctQuery measures end-to-end query latency per backend
// — the throughput gate that matters operationally, since structural
// navigation is one stage among scan, decompression and serialization.
func BenchmarkSuccinctQuery(b *testing.B) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: succinctBenchScale, Seed: 17})
	for _, bk := range structureBackends {
		// Both values explicit: a map with a missing key would silently
		// fall back to "" (the default backend) and benchmark the same
		// backend twice.
		b.Setenv("XQUEC_STRUCT", map[string]string{
			"records":  "records",
			"succinct": "succinct",
		}[bk.name])
		db, err := xquec.Compress(doc, xquec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range xmarkq.Queries()[:4] {
			b.Run(bk.name+"/"+q.ID, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := db.QueryWith(context.Background(), q.Text, xquec.QueryOptions{})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := res.SerializeXML(); err != nil {
						b.Fatal(err)
					}
					res.Close()
				}
			})
		}
	}
}

// TestSuccinctBenchSanity keeps the benchmark inputs honest under plain
// `go test`: both backends must agree on the operator outputs used
// above.
func TestSuccinctBenchSanity(t *testing.T) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 0.01, Seed: 17})
	stores := map[string]*storage.Store{}
	for _, bk := range structureBackends {
		s, err := storage.Load(doc, storage.LoadOptions{Structure: bk.kind})
		if err != nil {
			t.Fatal(err)
		}
		stores[bk.name] = s
	}
	rec, suc := stores["records"], stores["succinct"]
	regions, items := tagExtent(rec, "regions"), tagExtent(rec, "item")
	if fmt.Sprint(tagExtent(suc, "item")) != fmt.Sprint(items) {
		t.Fatal("item extents differ between backends")
	}
	if fmt.Sprint(algebra.Descendants(rec, regions, items)) != fmt.Sprint(algebra.Descendants(suc, regions, items)) {
		t.Fatal("Descendants differs between backends")
	}
	if fmt.Sprint(algebra.Parent(rec, items)) != fmt.Sprint(algebra.Parent(suc, items)) {
		t.Fatal("Parent differs between backends")
	}
}
