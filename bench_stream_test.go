// Benchmarks for the pull-based result path. Two properties are under
// guard here:
//
//   - BenchmarkFirstResult: time-to-first-item must stay flat as result
//     cardinality grows 10× — the defining property of pull-based
//     evaluation (an eager evaluator's first item costs O(n)).
//   - BenchmarkWriteXML vs BenchmarkSerializeXML: streaming
//     serialization must hold per-item allocation behavior instead of
//     materializing the full rendering.
//
// `make bench` appends both to BENCH_query.json via cmd/benchjson.
package xquec

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// benchStreamDB builds an n-item repository for the streaming query
// `FOR $i IN /d/i RETURN $i/v/text()`.
func benchStreamDB(b *testing.B, n int) *Database {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<d>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<i><v>value-%06d</v></i>", i)
	}
	sb.WriteString("</d>")
	db, err := Compress([]byte(sb.String()), Options{})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkFirstResult measures query-to-first-item latency at growing
// result cardinality. The 10×-apart sizes must report ~equal ns/op:
// the first item's cost is per-item work plus constant setup, never a
// function of how many items the query would produce.
func BenchmarkFirstResult(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := benchStreamDB(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := db.Query(streamQuery)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok, err := res.Next(); !ok || err != nil {
					b.Fatalf("first item: ok=%v err=%v", ok, err)
				}
				res.Close()
			}
		})
	}
}

// BenchmarkWriteXML streams the full result to a writer through the
// reusable per-item buffer.
func BenchmarkWriteXML(b *testing.B) {
	db := benchStreamDB(b, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(streamQuery)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.WriteXML(io.Discard); err != nil {
			b.Fatal(err)
		}
		res.Close()
	}
}

// BenchmarkSerializeXML is the deprecated eager form: same evaluation,
// but the rendering is materialized as one string. The gap to
// BenchmarkWriteXML in B/op is the cost of that materialization.
func BenchmarkSerializeXML(b *testing.B) {
	db := benchStreamDB(b, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(streamQuery)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.SerializeXML(); err != nil {
			b.Fatal(err)
		}
		res.Close()
	}
}
