// Benchmarks for the compiled-plan engine: the same streaming workload
// on the stack VM (default) and on the tree-walking oracle
// (XQUEC_EVAL=tree), so the per-item dispatch saving of replacing the
// coroutine-hop cursor with the VM run loop is measured directly.
// `make bench-vm` appends both to BENCH_vm.json via cmd/benchjson.
package xquec

import (
	"fmt"
	"testing"
)

// vmBenchEngines maps the sub-benchmark label to the XQUEC_EVAL value
// selecting that engine.
var vmBenchEngines = []struct{ label, env string }{
	{"vm", ""},
	{"tree", "tree"},
}

// BenchmarkVMStream drains a fixed-cardinality streaming query and
// reports the per-item cost (ns/item) of the pull cursor: this is the
// dispatch path — domain scan, predicate, bind, path, emit — with
// setup amortized over 5000 items per evaluation.
func BenchmarkVMStream(b *testing.B) {
	const items = 5000
	db := benchStreamDB(b, items)
	prep, err := db.Prepare(streamQuery)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range vmBenchEngines {
		b.Run("engine="+e.label, func(b *testing.B) {
			b.Setenv("XQUEC_EVAL", e.env)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := prep.Run()
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := res.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					n++
				}
				res.Close()
				if n != items {
					b.Fatalf("drained %d items, want %d", n, items)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/items, "ns/item")
		})
	}
}

// BenchmarkVMFirstResult is BenchmarkFirstResult's engine-split
// variant: query-to-first-item latency on the VM vs the tree walker at
// 10×-apart cardinalities (both must stay flat in n).
func BenchmarkVMFirstResult(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := benchStreamDB(b, n)
		prep, err := db.Prepare(streamQuery)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range vmBenchEngines {
			b.Run(fmt.Sprintf("engine=%s/n=%d", e.label, n), func(b *testing.B) {
				b.Setenv("XQUEC_EVAL", e.env)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := prep.Run()
					if err != nil {
						b.Fatal(err)
					}
					if _, ok, err := res.Next(); !ok || err != nil {
						b.Fatalf("first item: ok=%v err=%v", ok, err)
					}
					res.Close()
				}
			})
		}
	}
}

// BenchmarkVMPredicate runs a compressed-domain predicate query —
// restrict + deferred filter + join-free FLWOR — end to end on both
// engines, covering the opcode fast paths rather than raw emission.
func BenchmarkVMPredicate(b *testing.B) {
	db := benchVMPredDB(b)
	const q = `FOR $i IN /d/i WHERE $i/n >= 500 RETURN $i/v/text()`
	prep, err := db.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range vmBenchEngines {
		b.Run("engine="+e.label, func(b *testing.B) {
			b.Setenv("XQUEC_EVAL", e.env)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := prep.Run()
				if err != nil {
					b.Fatal(err)
				}
				for {
					_, ok, err := res.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
				}
				res.Close()
			}
		})
	}
}

// benchVMPredDB builds a repository with an integer container for the
// predicate benchmark.
func benchVMPredDB(b *testing.B) *Database {
	b.Helper()
	var sb []byte
	sb = append(sb, "<d>"...)
	for i := 0; i < 2000; i++ {
		sb = fmt.Appendf(sb, "<i><n>%d</n><v>value-%06d</v></i>", i, i)
	}
	sb = append(sb, "</d>"...)
	db, err := Compress(sb, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return db
}
