// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5) and the numeric claims in its text. Each benchmark
// logs the reproduced rows (run with -v) and exercises the same code
// paths as cmd/benchrun; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured numbers.
//
// The benchmark corpus sizes are scaled down from the paper's (which
// used up to 46 MB documents and an 11.3 MB XMark instance) so the
// whole suite runs in seconds; cmd/benchrun reproduces the full-size
// runs.
package xquec

import (
	"fmt"
	"io"
	"testing"

	"xquec/internal/datagen"
	"xquec/internal/engine"
	"xquec/internal/experiments"
	"xquec/internal/storage"
	"xquec/internal/xmarkq"
)

const benchScale = 1.0 // ≈1 MB XMark documents for the in-test runs

// BenchmarkTable1Datasets regenerates Table 1: the characteristics of
// the experimental corpora.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkFigure6LeftCompressionFactors regenerates Figure 6 (left):
// average CF over the real-life corpus substitutes for XMill, XGrind,
// XPRESS and XQueC.
func BenchmarkFigure6LeftCompressionFactors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6Left()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkFigure6RightXMarkCF regenerates Figure 6 (right): CF across
// XMark document sizes.
func BenchmarkFigure6RightXMarkCF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6Right([]float64{0.5, benchScale, 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkFigure7QueryTimes regenerates Figure 7 (plus the Q8/Q9
// numbers quoted in the text): query execution times of XQueC vs the
// Galax-like baseline.
func BenchmarkFigure7QueryTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkFigure4Q14Access regenerates the §2.3/Figure 4 contrast:
// bytes visited answering Q14 on each system.
func BenchmarkFigure4Q14Access(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4Q14(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkSection22StorageFootprint regenerates the §2.2 numbers:
// overall CF, summary share of the document, access-structure overhead.
func BenchmarkSection22StorageFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Section22([]float64{benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkSection33PartitioningExample regenerates the §3.3 example:
// NaiveConf (one shared ALM model) vs the greedy search's GoodConf.
func BenchmarkSection33PartitioningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Section33(1500)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkValueShare regenerates the §1 claim that values make up
// 70–80% of XML documents.
func BenchmarkValueShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ValueShare()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationCodecs compares the string codecs on one prose
// container: compression ratio is logged, decode speed is the measured
// metric (§2.1: ALM decompresses faster than the entropy coders).
func BenchmarkAblationCodecs(b *testing.B) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: benchScale, Seed: experiments.Seed})
	for _, alg := range []string{storage.AlgALM, storage.AlgHuffman, storage.AlgHuTucker} {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			s, err := storage.Load(doc, storage.LoadOptions{
				Plan: &storage.CompressionPlan{DefaultAlgorithm: alg},
			})
			if err != nil {
				b.Fatal(err)
			}
			c, ok := s.ContainerByPath("/site/open_auctions/open_auction/annotation/description/text/#text")
			if !ok {
				b.Fatal("missing description container")
			}
			plain := 0
			var buf []byte
			for i := 0; i < c.Len(); i++ {
				buf, err = c.Decode(buf[:0], i)
				if err != nil {
					b.Fatal(err)
				}
				plain += len(buf)
			}
			b.Logf("%s: container %d values, %d compressed / %d plain bytes (CF %.2f)",
				alg, c.Len(), c.CompressedBytes(), plain,
				1-float64(c.CompressedBytes())/float64(plain))
			b.SetBytes(int64(plain))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < c.Len(); j++ {
					if buf, err = c.Decode(buf[:0], j); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationJoinStrategy compares the Q8 IDREF join with and
// without a shared source model: shared models enable the compressed
// merge join, separate models force the decompressing hash join.
func BenchmarkAblationJoinStrategy(b *testing.B) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: benchScale, Seed: experiments.Seed})
	shared := &storage.CompressionPlan{
		Groups: map[string][]string{
			"refs": {
				"/site/people/person/@id",
				"/site/closed_auctions/closed_auction/buyer/@person",
			},
		},
		Algorithms: map[string]string{"refs": storage.AlgALM},
	}
	for _, cfg := range []struct {
		name string
		plan *storage.CompressionPlan
	}{{"separate-models-hashjoin", nil}, {"shared-model-mergejoin", shared}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			s, err := storage.Load(doc, storage.LoadOptions{Plan: cfg.plan})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := engine.New(s)
				res, err := e.Query(xmarkq.Q8)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.WriteXML(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSummaryAccess contrasts answering an absolute path
// via the structure summary's extents (XQueC's strategy) against
// navigating the structure tree from the root.
func BenchmarkAblationSummaryAccess(b *testing.B) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: benchScale, Seed: experiments.Seed})
	s, err := storage.Load(doc, storage.LoadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	e := engine.New(s)
	b.Run("summary-extents", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := e.Query(`count(/site/people/person/name)`)
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	})
	b.Run("navigational", func(b *testing.B) {
		// Forcing navigation: bind the root first so every step walks
		// the structure tree instead of reading summary extents.
		for i := 0; i < b.N; i++ {
			res, err := e.Query(`FOR $r IN /site RETURN count($r/people/person/name)`)
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	})
}

// BenchmarkCompressXMark measures the loader/compressor throughput at
// several worker counts; p=1 is the serial baseline the pipeline's
// speedup is judged against.
func BenchmarkCompressXMark(b *testing.B) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: benchScale, Seed: experiments.Seed})
	for _, par := range []int{1, 2, 4} {
		par := par
		b.Run(fmt.Sprintf("p=%d", par), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				if _, err := storage.Load(doc, storage.LoadOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeScratch measures steady-state per-value decode through
// the pooled scratch API; with -benchmem the expected allocation count
// is zero for every codec.
func BenchmarkDecodeScratch(b *testing.B) {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: benchScale, Seed: experiments.Seed})
	for _, alg := range []string{storage.AlgALM, storage.AlgHuffman, storage.AlgHuTucker} {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			s, err := storage.Load(doc, storage.LoadOptions{
				Plan: &storage.CompressionPlan{DefaultAlgorithm: alg},
			})
			if err != nil {
				b.Fatal(err)
			}
			c, ok := s.ContainerByPath("/site/open_auctions/open_auction/annotation/description/text/#text")
			if !ok {
				b.Fatal("missing description container")
			}
			sc := storage.NewScratch()
			defer sc.Release()
			bytes := 0
			for i := 0; i < c.Len(); i++ {
				v, err := c.DecodeScratch(sc, i)
				if err != nil {
					b.Fatal(err)
				}
				bytes += len(v)
			}
			b.SetBytes(int64(bytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < c.Len(); j++ {
					if _, err := c.DecodeScratch(sc, j); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func logRows(b *testing.B, rows []experiments.Row) {
	b.Helper()
	for _, r := range rows {
		b.Log(r.String())
	}
}
