// Command benchrun regenerates the paper's tables and figures (§5 plus
// the numeric claims in the text). Each experiment is identified by the
// paper artifact it reproduces; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	benchrun -exp all
//	benchrun -exp fig7 -scale 11 -repeat 3
//	benchrun -exp table1 | fig6left | fig6right | fig7 | fig4 | sec22 | sec33 | valueshare
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"xquec/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig6left, fig6right, fig7, fig4, sec22, sec33, valueshare, all)")
	scale := flag.Float64("scale", 11, "XMark scale for fig7/fig4 (11 = the paper's XMark11)")
	repeat := flag.Int("repeat", 3, "repetitions per query timing")
	sweep := flag.String("sweep", "1,5,10,25", "XMark scales for fig6right/sec22")
	flag.Parse()

	run := func(id string) error {
		switch id {
		case "table1":
			return show("Table 1 — data sets", func() ([]experiments.Row, error) {
				return experiments.Table1(*scale)
			})
		case "fig6left":
			return show("Figure 6 (left) — CF on real-life corpora", experiments.Figure6Left)
		case "fig6right":
			return show("Figure 6 (right) — CF on XMark documents", func() ([]experiments.Row, error) {
				return experiments.Figure6Right(parseScales(*sweep))
			})
		case "fig7":
			return show(fmt.Sprintf("Figure 7 — QETs on XMark%g, XQueC vs Galax-like", *scale),
				func() ([]experiments.Row, error) { return experiments.Figure7(*scale, *repeat) })
		case "fig4":
			return show("Figure 4 / §2.3 — Q14 access patterns", func() ([]experiments.Row, error) {
				return experiments.Figure4Q14(*scale)
			})
		case "sec22":
			return show("§2.2 — storage footprint", func() ([]experiments.Row, error) {
				return experiments.Section22(parseScales(*sweep))
			})
		case "sec33":
			return show("§3.3 — partitioning example (NaiveConf vs GoodConf)", func() ([]experiments.Row, error) {
				return experiments.Section33(0)
			})
		case "valueshare":
			return show("§1 — value share of documents", experiments.ValueShare)
		}
		return fmt.Errorf("unknown experiment %q", id)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "valueshare", "fig6left", "fig6right", "sec22", "sec33", "fig4", "fig7"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
	}
}

func show(title string, fn func() ([]experiments.Row, error)) error {
	fmt.Printf("== %s ==\n", title)
	rows, err := fn()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Println()
	return nil
}

func parseScales(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: bad scale %q\n", part)
			os.Exit(2)
		}
		out = append(out, f)
	}
	return out
}
