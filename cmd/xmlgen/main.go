// Command xmlgen generates the experimental corpora: XMark-style
// auction documents (a substitute for the original xmlgen of the XMark
// project) and the three real-life data-set substitutes of Figure 6.
//
// Usage:
//
//	xmlgen -kind xmark -scale 11 -seed 2004 -o auction.xml
//	xmlgen -kind shakespeare -bytes 7500000 -o shakespeare.xml
//	xmlgen -kind washington  -bytes 2900000 -o courses.xml
//	xmlgen -kind baseball    -bytes 650000  -o baseball.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xquec/internal/datagen"
)

func main() {
	kind := flag.String("kind", "xmark", "xmark, shakespeare, washington, or baseball")
	scale := flag.Float64("scale", 1, "XMark scale factor (≈ megabytes)")
	size := flag.Int("bytes", 1_000_000, "target size for the real-life substitutes")
	seed := flag.Int64("seed", 2004, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var doc []byte
	switch *kind {
	case "xmark":
		doc = datagen.XMark(datagen.XMarkConfig{Scale: *scale, Seed: *seed})
	case "shakespeare":
		doc = datagen.Shakespeare(*size, *seed)
	case "washington":
		doc = datagen.WashingtonCourse(*size, *seed)
	case "baseball":
		doc = datagen.Baseball(*size, *seed)
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(doc), *out)
}
