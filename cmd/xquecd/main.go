// Command xquecd is the XQueC query daemon: it serves XQuery over a
// directory of compressed .xqc repositories, keeping hot repositories
// resident and caching compiled queries so repeated workload queries
// skip the parser.
//
// Usage:
//
//	xquecd -repos ./repos [-addr :8090] [-pool 8] [-plans 256]
//	       [-timeout 30s] [-max-concurrent 16] [-flush-items 32]
//	       [-query-parallelism 1] [-partial-results] [-hedge 50ms]
//	       [-shard-fanout 0] [-compact-after 0] [-max-append-bytes 64MiB]
//	       [-pprof localhost:6060]
//
// The repository directory may hold single repositories (name.xqc),
// shard-set manifests (name.xqcs, from `xquec compress -shards N`) and
// segment-set manifests (name.xqcg, from appends); all are addressed by
// bare name, with the segment manifest taking precedence. Scattered
// queries over shard sets honor -partial-results, -hedge and
// -shard-fanout, and export xquecd_shard_* metrics.
//
// POST /append grows a repository without rebuilding it: the document
// becomes a new append segment, the set is persisted and atomically
// swapped into the pool (in-flight queries keep their snapshot), and
// once the segment count reaches -compact-after a background compaction
// folds the set back into one freshly partitioned segment.
//
// API:
//
//	POST /query         {"repo":"auction","query":"count(/site//item)","timeout_ms":500}
//	POST /query/stream  same body; chunked newline-separated items,
//	                    flushed every -flush-items items
//	POST /append        {"repo":"auction","doc":"<site>...</site>","compact":false}
//	GET  /repos         available and resident repositories
//	GET  /stats         JSON counters, pool and plan-cache statistics
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text format
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xquec/internal/server"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	repos := flag.String("repos", "", "directory of .xqc repository files (required)")
	pool := flag.Int("pool", 8, "max resident repositories")
	plans := flag.Int("plans", 256, "max cached query plans")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query evaluation deadline")
	maxConc := flag.Int("max-concurrent", 0, "max concurrently evaluating queries (0 = 2×GOMAXPROCS)")
	flushItems := flag.Int("flush-items", 32, "flush /query/stream responses every N items (first item always flushes)")
	queryPar := flag.Int("query-parallelism", 1, "intra-query worker budget per query (1 = serial; requests may override with \"parallelism\")")
	partial := flag.Bool("partial-results", false, "serve partial results when a shard fails on sharded repositories (requests may override with \"partial_results\")")
	hedge := flag.Duration("hedge", 0, "re-dispatch a silent shard stream after this long on scattered queries (0 = off; requests may override with \"hedge_ms\")")
	shardFanout := flag.Int("shard-fanout", 0, "max shards evaluating concurrently per scattered query (0 = all)")
	compactAfter := flag.Int("compact-after", 0, "background-compact a repository once an append leaves it with this many segments (0 = only on request)")
	maxAppend := flag.Int64("max-append-bytes", 0, "max /append request body size in bytes (0 = 64 MiB)")
	appendPar := flag.Int("append-parallelism", 0, "ingestion worker budget for appends and compactions (0 = GOMAXPROCS)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty = off")
	flag.Parse()

	if *repos == "" {
		fmt.Fprintln(os.Stderr, "xquecd: -repos is required")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := server.New(server.Config{
		RepoDir:           *repos,
		PoolSize:          *pool,
		PlanCacheSize:     *plans,
		MaxConcurrent:     *maxConc,
		QueryTimeout:      *timeout,
		FlushEvery:        *flushItems,
		QueryParallelism:  *queryPar,
		PartialResults:    *partial,
		HedgeAfter:        *hedge,
		ShardFanout:       *shardFanout,
		CompactAfter:      *compactAfter,
		MaxAppendBytes:    *maxAppend,
		AppendParallelism: *appendPar,
	})
	if err != nil {
		log.Fatalf("xquecd: %v", err)
	}
	if *pprofAddr != "" {
		// Side listener so profiling endpoints never share the public
		// address; the import registers the handlers on DefaultServeMux.
		go func() {
			log.Printf("xquecd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("xquecd: pprof listener: %v", err)
			}
		}()
	}
	names, err := srv.Pool().Available()
	if err != nil {
		log.Fatalf("xquecd: %v", err)
	}
	log.Printf("xquecd: serving %d repositories from %s on %s (pool=%d plans=%d timeout=%v)",
		len(names), *repos, *addr, *pool, *plans, *timeout)
	for _, n := range names {
		log.Printf("xquecd:   repo %s", n)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("xquecd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("xquecd: %v", err)
	}
	<-done
}
