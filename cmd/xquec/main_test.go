package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDoc = `<site><people>
  <person id="p0"><name>Alice</name><age>30</age></person>
  <person id="p1"><name>Bob</name><age>25</age></person>
</people></site>`

func setup(t *testing.T) (docPath, repoPath string) {
	t.Helper()
	dir := t.TempDir()
	docPath = filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(docPath, []byte(testDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	repoPath = filepath.Join(dir, "doc.xqc")
	if err := cmdCompress([]string{"-o", repoPath, docPath}); err != nil {
		t.Fatal(err)
	}
	return docPath, repoPath
}

func TestCompressQueryStats(t *testing.T) {
	_, repo := setup(t)
	if err := cmdQuery([]string{"-q", `count(/site//person)`, repo}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{repo}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExplain([]string{"-q", `/site/people/person/name`, repo}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{repo}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressWithAlgorithm(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "d.xml")
	if err := os.WriteFile(doc, []byte(testDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "d.xqc")
	if err := cmdCompress([]string{"-o", out, "-alg", "huffman", doc}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-q", `/site/people/person[@id = "p0"]/name/text()`, out}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryTimeout(t *testing.T) {
	_, repo := setup(t)
	// An already-expired deadline aborts deterministically before any
	// evaluation; the error must be distinguishable from query errors
	// so main can exit with the dedicated timeout code.
	err := cmdQuery([]string{"-timeout", "1ns", "-q", `count(/site//person)`, repo})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// A generous timeout does not disturb a normal query.
	if err := cmdQuery([]string{"-timeout", "30s", "-q", `count(/site//person)`, repo}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := cmdCompress([]string{}); err == nil || !strings.Contains(err.Error(), "one input") {
		t.Fatalf("err = %v", err)
	}
	if err := cmdQuery([]string{"nonexistent.xqc"}); err == nil {
		t.Fatal("missing -q accepted")
	}
	if err := cmdStats([]string{"nonexistent.xqc"}); err == nil {
		t.Fatal("missing repo accepted")
	}
	if err := cmdCompress([]string{"nonexistent.xml"}); err == nil {
		t.Fatal("missing doc accepted")
	}
	_, repo := setup(t)
	if err := cmdQuery([]string{"-q", "for $x in", repo}); err == nil {
		t.Fatal("bad query accepted")
	}
}
