// Command xquec compresses XML documents into queryable XQueC
// repositories and runs XQuery over them.
//
// Usage:
//
//	xquec compress [-o out.xqc] [-alg alm|huffman|hutucker|blob] doc.xml
//	xquec append   [-compact] [-p workers] repo.xqc|set.xqcg doc.xml...
//	xquec query    [-q query | -f query.xq] [-timeout 30s] [-n max]
//	               [-p workers] [-cpuprofile out.pprof] [-explain] repo.xqc
//	xquec stats    repo.xqc
//	xquec decompress repo.xqc        # reconstruct the XML
//
// append ingests each document as a new append segment of the
// repository's segment set, persisting a .xqcg manifest next to the
// repository; -compact folds the set back into a single freshly
// partitioned segment afterwards.
//
// Query results stream to stdout as they are produced: the first item
// prints before the full evaluation finishes, and -n stops both the
// output and the evaluation after that many items. -p grants the
// evaluator an intra-query worker budget (0 = GOMAXPROCS); results are
// identical at every setting.
//
// Exit codes: 0 success, 1 error, 2 usage, 3 query timeout,
// 4 query parse error, 5 corrupt repository.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"xquec"
)

// Exit codes beyond the conventional 0/1/2, distinct so scripts can
// tell a retryable timeout from a bad query from a bad repository.
const (
	exitTimeout = 3
	exitParse   = 4
	exitCorrupt = 5
)

// exitCode classifies err into the documented exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return exitTimeout
	case errors.Is(err, xquec.ErrParse):
		return exitParse
	case errors.Is(err, xquec.ErrCorruptRepository):
		return exitCorrupt
	}
	return 1
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "append":
		err = cmdAppend(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		// Library errors already carry the "xquec: " package prefix.
		fmt.Fprintln(os.Stderr, "xquec:", strings.TrimPrefix(err.Error(), "xquec: "))
		os.Exit(exitCode(err))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xquec compress [-o out.xqc] [-alg alm|huffman|hutucker|blob] [-p workers] [-shards n] [-v] doc.xml
  xquec append   [-compact] [-p workers] repo.xqc|set.xqcg doc.xml...
  xquec query    [-q query | -f query.xq] [-timeout 30s] [-n max] [-p workers] [-cpuprofile file] [-explain] repo.xqc|set.xqcs|set.xqcg
  xquec stats    repo.xqc|set.xqcs|set.xqcg
  xquec explain  -q query repo.xqc|set.xqcs|set.xqcg
  xquec decompress repo.xqc|set.xqcs|set.xqcg`)
	os.Exit(2)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	out := fs.String("o", "", "output repository file (default: input + .xqc, or + .xqcs with -shards)")
	alg := fs.String("alg", "", "default string algorithm (alm, huffman, hutucker, blob)")
	par := fs.Int("p", 0, "compressor worker count (0 = GOMAXPROCS, 1 = serial; output is identical)")
	shards := fs.Int("shards", 0, "split into this many shard repositories with a shared dictionary (<2 = single repository)")
	verbose := fs.Bool("v", false, "print per-phase build timings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("compress needs one input document")
	}
	in := fs.Arg(0)
	doc, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	opts := xquec.Options{Parallelism: *par, Shards: *shards}
	if *alg != "" {
		opts.Plan = &xquec.CompressionPlan{DefaultAlgorithm: *alg}
	}
	db, err := xquec.Compress(doc, opts)
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		if *shards >= 2 {
			dst = in + ".xqcs"
		} else {
			dst = in + ".xqc"
		}
	}
	if err := db.SaveFile(dst); err != nil {
		return err
	}
	st := db.Stats()
	fmt.Printf("%s -> %s\n%s\n", in, dst, st)
	if *verbose {
		b := db.IngestStats()
		fmt.Printf("build: workers=%d parse=%v classify=%v train=%v encode=%v index=%v total=%v\n",
			b.Parallelism, b.Parse, b.Classify, b.Train, b.Encode, b.Index, b.Total())
	}
	return nil
}

// cmdAppend grows a repository in place: each document becomes a new
// append segment sharing the repository's name dictionary, and the set
// is persisted as a .xqcg manifest next to the repository (queries then
// address the manifest — or the bare name via xquecd, which prefers
// it). -compact folds the grown set back into a single segment with the
// cost-model partitioner re-run over the whole corpus.
func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	compact := fs.Bool("compact", false, "compact to a single freshly partitioned segment after appending")
	par := fs.Int("p", 0, "compressor worker count (0 = GOMAXPROCS, 1 = serial; output is identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("append needs a repository and at least one document (with -compact, a repository alone recompacts)")
	}
	if fs.NArg() < 2 && !*compact {
		return fmt.Errorf("append needs at least one document to append (or -compact)")
	}
	repo := fs.Arg(0)
	db, err := xquec.Open(repo)
	if err != nil {
		return err
	}
	w, err := xquec.NewWriter(db, xquec.Options{Parallelism: *par})
	if err != nil {
		return err
	}
	w.BindFile(strings.TrimSuffix(repo, ".xqc"))
	for _, in := range fs.Args()[1:] {
		doc, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		if err := w.Append(doc); err != nil {
			return fmt.Errorf("%s: %w", in, err)
		}
	}
	if db, err = w.Commit(); err != nil {
		return err
	}
	if *compact {
		if db, err = w.Compact(context.Background()); err != nil {
			return err
		}
	}
	fmt.Printf("%s: %d segments\n%s\n", repo, db.Segments(), db.Stats())
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	q := fs.String("q", "", "query text")
	qf := fs.String("f", "", "file containing the query")
	timeout := fs.Duration("timeout", 0, "abort evaluation after this long (0 = no limit)")
	maxItems := fs.Int("n", 0, "stop after this many result items (0 = all); stops evaluation too")
	par := fs.Int("p", 0, "intra-query worker count (0 = GOMAXPROCS, 1 = serial; results are identical)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the evaluation to this file")
	explain := fs.Bool("explain", false, "print the access plan and compiled program instead of evaluating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query needs one repository file")
	}
	if *q == "" && *qf == "" {
		return fmt.Errorf("provide -q or -f")
	}
	if *qf != "" {
		b, err := os.ReadFile(*qf)
		if err != nil {
			return err
		}
		*q = string(b)
	}
	db, err := xquec.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	if *explain {
		return printExplain(db, *q)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	res, err := db.Execute(ctx, *q, xquec.QueryOptions{Parallelism: *par})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("query exceeded %v: %w", *timeout, err)
		}
		return err
	}
	defer res.Close()

	// Stream: each item is decompressed, rendered and written as it is
	// produced, so the first result appears before evaluation finishes
	// and -n stops the evaluation-side work, not just the printing.
	w := bufio.NewWriter(os.Stdout)
	count := 0
	var buf []byte
	for *maxItems == 0 || count < *maxItems {
		item, ok, err := res.Next()
		if err != nil {
			w.Flush()
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("query exceeded %v: %w", *timeout, err)
			}
			return err
		}
		if !ok {
			break
		}
		buf, err = item.AppendXML(buf[:0])
		if err != nil {
			w.Flush()
			return err
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
		count++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "-- %d items\n", count)
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	q := fs.String("q", "", "query text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *q == "" {
		return fmt.Errorf("explain needs -q and one repository file")
	}
	db, err := xquec.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	return printExplain(db, *q)
}

// printExplain writes the tree-walker access plan followed by the
// compiled stack-VM program (when the query compiles) — the pair
// `xquec query -explain` and `xquec explain` both print.
func printExplain(db *xquec.Database, q string) error {
	plan, err := db.Explain(q)
	if err != nil {
		return err
	}
	fmt.Print(plan)
	prog, err := db.ExplainProgram(q)
	if err != nil {
		return err
	}
	if prog == "" {
		fmt.Println("\ncompiled program: none (tree-walker fallback)")
		return nil
	}
	fmt.Printf("\ncompiled program (engine=%s):\n%s", xquec.EvalEngine(), prog)
	return nil
}

func cmdStats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stats needs one repository file")
	}
	db, err := xquec.Open(args[0])
	if err != nil {
		return err
	}
	fmt.Println(db.Stats())
	f := db.Footprint()
	fmt.Printf("resident: %d bytes (structure=%s, access overhead %.2fx)\n",
		f.Total(), db.StructureKind(), f.AccessOverheadFactor())
	if bits := db.StructureBitsPerNode(); bits > 0 {
		fmt.Printf("structure density: %.2f bits/node\n", bits)
	}
	if db.Sharded() {
		fmt.Printf("shards: %d\n", db.Shards())
	}
	if db.Segmented() {
		fmt.Printf("segments: %d\n", db.Segments())
	}
	fmt.Println("containers:")
	for _, c := range db.Containers() {
		switch {
		case db.Sharded():
			fmt.Printf("  [%03d] %-54s %-8s %-9s recs=%-7d %dB\n",
				c.Shard, c.Path, c.Kind, c.Algorithm, c.Records, c.Bytes)
		case db.Segmented():
			fmt.Printf("  [%03d] %-54s %-8s %-9s recs=%-7d %dB\n",
				c.Segment, c.Path, c.Kind, c.Algorithm, c.Records, c.Bytes)
		default:
			fmt.Printf("  %-60s %-8s %-9s recs=%-7d %dB\n",
				c.Path, c.Kind, c.Algorithm, c.Records, c.Bytes)
		}
	}
	return nil
}

func cmdDecompress(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("decompress needs one repository file")
	}
	db, err := xquec.Open(args[0])
	if err != nil {
		return err
	}
	out, err := db.Decompress()
	if err != nil {
		return err
	}
	os.Stdout.Write(out)
	fmt.Println()
	return nil
}
