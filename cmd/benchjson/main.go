// Command benchjson turns `go test -bench` output into one JSON line
// per invocation, appended to a log file — a cheap, dependency-free way
// to keep a benchmark history across commits:
//
//	go test -bench . -benchmem . | benchjson -o BENCH_ingest.json -label ingest
//
// Each line holds the label, the Go version string reported by the
// benchmark header, and every benchmark result with its ns/op, MB/s,
// B/op and allocs/op where present. stdin passes through to stdout so
// the pipe stays readable.
//
// The log is also the input of the second mode:
//
//	benchjson -diff old.json new.json -threshold 10
//
// compares the last record of each file benchmark-by-benchmark (ns/op
// and every custom metric) and exits nonzero when anything regressed
// past the threshold. Diffing a file against itself compares its last
// two records — `benchjson -diff BENCH_x.json BENCH_x.json` answers
// "what did the latest run change".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Metrics holds every custom
// per-op unit emitted with b.ReportMetric (e.g. "bits/node",
// "nodes/s") that the fixed fields do not cover.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the JSON line appended per run.
type Record struct {
	Label   string   `json:"label,omitempty"`
	Go      string   `json:"go,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "append the JSON record to this file (default: stdout only)")
	label := flag.String("label", "", "label stored in the record")
	diff := flag.Bool("diff", false, "compare two benchmark logs: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -diff")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two log files")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold))
	}

	rec := Record{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			// header noise
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "goarch:"):
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rec.Results = append(rec.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	if len(rec.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	data, err := json.Marshal(rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		return
	}
	f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%s\n", data); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line, e.g.
//
//	BenchmarkCompressXMark/p=4-8  16  69914398 ns/op  13.73 MB/s  48889 B/op  490226 allocs/op
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

// readRecords parses every JSON line of a benchmark log.
func readRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, i+1, err)
		}
		recs = append(recs, r)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: no records", path)
	}
	return recs, nil
}

// higherIsBetter classifies a custom metric unit by its shape:
// throughput units ("MB/s", "Mnodes/s", anything per second) improve
// upward, densities and latencies ("bits/node", "ns/op") downward.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s")
}

// runDiff compares the reference record of oldPath against the latest
// record of newPath and returns the process exit code: 0 when nothing
// regressed past the threshold, 1 otherwise. The reference is the last
// record of oldPath, or its second-to-last when both paths name the
// same log (diffing a file against itself).
func runDiff(oldPath, newPath string, threshold float64) int {
	oldRecs, err := readRecords(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRecs, err := readRecords(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldRec := oldRecs[len(oldRecs)-1]
	newRec := newRecs[len(newRecs)-1]
	if oldPath == newPath {
		if len(oldRecs) < 2 {
			fmt.Fprintf(os.Stderr, "benchjson: %s has a single record, nothing to diff against\n", oldPath)
			return 2
		}
		oldRec = oldRecs[len(oldRecs)-2]
	}

	oldBy := map[string]Result{}
	for _, r := range oldRec.Results {
		oldBy[r.Name] = r
	}
	regressions := 0
	// compare emits one line per metric; worse results past the
	// threshold count as regressions.
	compare := func(name, unit string, oldV, newV float64, betterUp bool) {
		if oldV == 0 {
			return
		}
		pct := (newV - oldV) / oldV * 100
		worse := pct > threshold
		if betterUp {
			worse = pct < -threshold
		}
		mark := " "
		if worse {
			mark = "!"
			regressions++
		}
		fmt.Printf("%s %-60s %-10s %14.4g -> %-14.4g %+6.1f%%\n", mark, name, unit, oldV, newV, pct)
	}
	for _, nr := range newRec.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("+ %-60s (new benchmark)\n", nr.Name)
			continue
		}
		delete(oldBy, nr.Name)
		compare(nr.Name, "ns/op", or.NsPerOp, nr.NsPerOp, false)
		units := make([]string, 0, len(nr.Metrics))
		for unit := range nr.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if ov, ok := or.Metrics[unit]; ok {
				compare(nr.Name, unit, ov, nr.Metrics[unit], higherIsBetter(unit))
			}
		}
	}
	dropped := make([]string, 0, len(oldBy))
	for name := range oldBy {
		dropped = append(dropped, name)
	}
	sort.Strings(dropped)
	for _, name := range dropped {
		fmt.Printf("- %-60s (dropped benchmark)\n", name)
	}
	if regressions > 0 {
		fmt.Printf("benchjson: %d regression(s) past %.1f%%\n", regressions, threshold)
		return 1
	}
	return 0
}
