// Command benchjson turns `go test -bench` output into one JSON line
// per invocation, appended to a log file — a cheap, dependency-free way
// to keep a benchmark history across commits:
//
//	go test -bench . -benchmem . | benchjson -o BENCH_ingest.json -label ingest
//
// Each line holds the label, the Go version string reported by the
// benchmark header, and every benchmark result with its ns/op, MB/s,
// B/op and allocs/op where present. stdin passes through to stdout so
// the pipe stays readable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Metrics holds every custom
// per-op unit emitted with b.ReportMetric (e.g. "bits/node",
// "nodes/s") that the fixed fields do not cover.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the JSON line appended per run.
type Record struct {
	Label   string   `json:"label,omitempty"`
	Go      string   `json:"go,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "append the JSON record to this file (default: stdout only)")
	label := flag.String("label", "", "label stored in the record")
	flag.Parse()

	rec := Record{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			// header noise
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "goarch:"):
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rec.Results = append(rec.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	if len(rec.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	data, err := json.Marshal(rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		return
	}
	f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%s\n", data); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line, e.g.
//
//	BenchmarkCompressXMark/p=4-8  16  69914398 ns/op  13.73 MB/s  48889 B/op  490226 allocs/op
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
