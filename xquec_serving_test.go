package xquec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// slowDoc and slowQuery build an evaluation long enough that the
// cancellation tests can interrupt it mid-stream: a residual
// (non-pushdownable) cross product over 1200 elements.
func slowDB(t testing.TB) *Database {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<d>")
	for i := 0; i < 1200; i++ {
		fmt.Fprintf(&sb, "<i><v>%d</v></i>", i)
	}
	sb.WriteString("</d>")
	db, err := Compress([]byte(sb.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const slowQuery = `count(FOR $a IN /d/i, $b IN /d/i WHERE number($a/v) + number($b/v) < 0 RETURN 1)`

func TestQueryContextTimeout(t *testing.T) {
	db := slowDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	started := time.Now()
	_, err := db.QueryContext(ctx, slowQuery)
	elapsed := time.Since(started)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; evaluation was not interrupted", elapsed)
	}
}

func TestQueryContextCancel(t *testing.T) {
	db := slowDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := db.QueryContext(ctx, slowQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestQueryContextExpiredBeforeStart(t *testing.T) {
	db, err := Compress([]byte(apiDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := db.QueryContext(ctx, `count(/site//person)`); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// A background context behaves exactly like plain Query.
	res, err := db.QueryContext(context.Background(), `count(/site//person)`)
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := res.SerializeXML(); out != "2" {
		t.Fatalf("result = %q", out)
	}
}

func TestPreparedMatchesQuery(t *testing.T) {
	db, err := Compress([]byte(apiDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := `FOR $p IN /site/people/person WHERE $p/age >= 28 RETURN $p/name/text()`
	prep, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Text() != q {
		t.Fatalf("Text = %q", prep.Text())
	}
	want, _ := db.MustQuery(q).SerializeXML()
	for i := 0; i < 3; i++ {
		res, err := prep.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.SerializeXML(); got != want {
			t.Fatalf("run %d: %q != %q", i, got, want)
		}
	}
	if _, err := db.Prepare(`FOR $x IN`); err == nil {
		t.Fatal("bad query prepared")
	}
}

// TestPreparedConcurrentRuns is the shared-plan half of the
// goroutine-safety audit: one parsed query, many engines, run under
// -race. The engine keeps all mutable evaluation state (join-index
// caches, scopes) per call, so a cached plan must be shareable.
func TestPreparedConcurrentRuns(t *testing.T) {
	db, err := Compress([]byte(apiDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`FOR $p IN /site/people/person WHERE $p/age >= 28 RETURN $p/name/text()`,
		`count(/site/closed_auctions/closed_auction[price >= 20])`,
		`FOR $p IN /site/people/person
		 LET $a := FOR $t IN /site/closed_auctions/closed_auction
		           WHERE $t/buyer/@person = $p/@id RETURN $t
		 RETURN count($a)`,
	}
	preps := make([]*Prepared, len(queries))
	want := make([]string, len(queries))
	for i, q := range queries {
		p, err := db.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		preps[i] = p
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = res.SerializeXML()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (w + i) % len(preps)
				res, err := preps[k].RunContext(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if got, _ := res.SerializeXML(); got != want[k] {
					errs <- fmt.Errorf("query %d: %q != %q", k, got, want[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOpenFailurePaths(t *testing.T) {
	db, err := Compress([]byte(apiDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.xqc")
	if err := db.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTAREPO"), data[8:]...)
		_, err := OpenBytes(bad)
		if err == nil {
			t.Fatal("bad magic accepted")
		}
		if !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("unhelpful error: %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		_, err := OpenBytes(data[:len(data)-100])
		if err == nil {
			t.Fatal("truncated repository accepted")
		}
		if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("unhelpful error: %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := OpenBytes(nil); err == nil {
			t.Fatal("empty bytes accepted")
		}
	})
	t.Run("file error includes path", func(t *testing.T) {
		trunc := filepath.Join(dir, "trunc.xqc")
		if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(trunc)
		if err == nil {
			t.Fatal("truncated file opened")
		}
		if !strings.Contains(err.Error(), "trunc.xqc") {
			t.Fatalf("error does not name the file: %v", err)
		}
	})
}
