package xquec

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xquec/internal/datagen"
	"xquec/internal/experiments"
	"xquec/internal/segment"
)

// appendBenchDocs lazily generates the shared append-benchmark corpus:
// four same-root XMark documents (distinct seeds) whose concatenation
// is the logical corpus, held as 1, 2 and 4 segments — identical
// content at every segment count, so the query rows compare layouts,
// not data.
var appendBenchDocs = struct {
	once sync.Once
	docs [][]byte
	dbs  map[int]*Database // keyed by segment count
	err  error
}{}

func appendBenchSetup(b *testing.B) {
	b.Helper()
	appendBenchDocs.once.Do(func() {
		docs := make([][]byte, 4)
		for i := range docs {
			docs[i] = datagen.XMark(datagen.XMarkConfig{Scale: benchScale, Seed: experiments.Seed + int64(i)})
		}
		appendBenchDocs.docs = docs
		appendBenchDocs.dbs = map[int]*Database{}
		// dbs[n] holds the full 4-document corpus as n equal segments.
		for _, n := range []int{1, 2, 4} {
			per := len(docs) / n
			parts := make([][]byte, n)
			for i := range parts {
				part, err := segment.Concat(docs[i*per : (i+1)*per]...)
				if err != nil {
					appendBenchDocs.err = err
					return
				}
				parts[i] = part
			}
			db, err := Compress(parts[0], Options{})
			if err != nil {
				appendBenchDocs.err = err
				return
			}
			if n > 1 {
				w, err := NewWriter(db, Options{})
				if err != nil {
					appendBenchDocs.err = err
					return
				}
				for _, part := range parts[1:] {
					if err := w.Append(part); err != nil {
						appendBenchDocs.err = err
						return
					}
				}
				if db, err = w.Commit(); err != nil {
					appendBenchDocs.err = err
					return
				}
			}
			appendBenchDocs.dbs[n] = db
		}
	})
	if appendBenchDocs.err != nil {
		b.Fatal(appendBenchDocs.err)
	}
}

// BenchmarkAppendIngest compares growing a repository by one document
// via the Writer append path (one new segment, dictionary pre-seeded,
// base untouched) against the re-ingest baseline (recompressing the
// whole concatenated corpus) — the cost asymmetry that motivates the
// segment model.
func BenchmarkAppendIngest(b *testing.B) {
	appendBenchSetup(b)
	base := appendBenchDocs.dbs[1]
	docs := appendBenchDocs.docs

	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := NewWriter(base, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Append(docs[1]); err != nil {
				b.Fatal(err)
			}
			if _, err := w.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reingest", func(b *testing.B) {
		corpus, err := segment.Concat(docs[0], docs[1])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Compress(corpus, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendQuery measures query latency over the same logical
// corpus held as 1, 2 and 4 segments: the scattered row exercises
// per-segment evaluation + the ordered merge, the fallback row the
// lazily fused whole-corpus store (fused untimed in warm-up). Results
// are byte-identical at every segment count; the delta is the price of
// appendability on the read path.
func BenchmarkAppendQuery(b *testing.B) {
	appendBenchSetup(b)
	for _, bench := range []struct{ name, q string }{
		{"scatter", `FOR $p IN document("auction.xml")/site/people/person RETURN $p/name/text()`},
		{"fallback", `count(/site//item)`},
	} {
		for _, segs := range []int{1, 2, 4} {
			db := appendBenchDocs.dbs[segs]
			b.Run(fmt.Sprintf("%s/segments=%d", bench.name, segs), func(b *testing.B) {
				// Warm up untimed: the fallback path fuses the corpus lazily
				// (sync.Once) on its first query.
				if res, err := db.Execute(context.Background(), bench.q, QueryOptions{}); err == nil {
					res.Len()
					res.Close()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := db.Execute(context.Background(), bench.q, QueryOptions{})
					if err != nil {
						b.Fatal(err)
					}
					for {
						_, ok, err := res.Next()
						if err != nil {
							b.Fatal(err)
						}
						if !ok {
							break
						}
					}
					res.Close()
				}
			})
		}
	}
}
