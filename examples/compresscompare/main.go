// Compression comparison: runs the four compressors of Figure 6 —
// XMill-like (opaque), XGrind-like and XPRESS-like (homomorphic), and
// XQueC — over a document of your choice and prints their compression
// factors plus what each can still do with the compressed form.
//
//	go run ./examples/compresscompare [-kind xmark|shakespeare|washington|baseball]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"xquec"
	"xquec/internal/baselines/xgrind"
	"xquec/internal/baselines/xmill"
	"xquec/internal/baselines/xpress"
	"xquec/internal/datagen"
)

func main() {
	kind := flag.String("kind", "xmark", "xmark, shakespeare, washington, or baseball")
	flag.Parse()

	var doc []byte
	switch *kind {
	case "xmark":
		doc = datagen.XMark(datagen.XMarkConfig{Scale: 2, Seed: 5})
	case "shakespeare":
		doc = datagen.Shakespeare(2_000_000, 5)
	case "washington":
		doc = datagen.WashingtonCourse(2_000_000, 5)
	case "baseball":
		doc = datagen.Baseball(650_000, 5)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	fmt.Printf("%s document: %.1f MB\n\n", *kind, float64(len(doc))/1e6)

	mill, err := xmill.Compress(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XMill-like   CF %5.1f%%   queryable: no (containers are opaque chunks)\n",
		100*mill.CompressionFactor())

	grind, err := xgrind.Compress(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XGrind-like  CF %5.1f%%   queryable: exact/prefix match, full top-down scan only\n",
		100*grind.CompressionFactor())

	press, err := xpress.Compress(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XPRESS-like  CF %5.1f%%   queryable: path intervals, full top-down scan only\n",
		100*press.CompressionFactor())

	db, err := xquec.Compress(doc, xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XQueC        CF %5.1f%%   queryable: full XQuery fragment, selective container access\n",
		100*db.CompressionFactor())

	if *kind == "xmark" {
		// Demonstrate the query-capability gap on the same data.
		fmt.Println("\npoint query on each system (find person0):")
		hits, visited, err := grind.ExactMatch("/site/people/person/@id", "person0", false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  XGrind-like: %d hit(s), scanned %d stream bytes\n", len(hits), visited)
		res, err := db.Execute(context.Background(), `FOR $p IN /site/people/person[@id = "person0"] RETURN $p/name/text()`, xquec.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		var sb strings.Builder
		res.WriteXML(&sb)
		res.Close()
		fmt.Printf("  XQueC:       %q via one container binary search\n", sb.String())
	}
}
