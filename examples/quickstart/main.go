// Quickstart: compress a small XML document into an XQueC repository,
// query it in the compressed domain, and show the compression stats.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"xquec"
)

const doc = `<library>
  <book year="1999"><title>Compressing Relations and Indexes</title><price>35.00</price></book>
  <book year="2000"><title>XMill: an Efficient Compressor for XML</title><price>42.50</price></book>
  <book year="2002"><title>XGRIND: a Query-Friendly XML Compressor</title><price>28.00</price></book>
  <book year="2003"><title>XPRESS: a Queriable Compression for XML</title><price>31.00</price></book>
  <book year="2004"><title>Efficient Query Evaluation over Compressed XML</title><price>45.00</price></book>
</library>`

func main() {
	// 1. Compress. With no workload, strings get one ALM (order-
	// preserving) source model per container and numeric values get
	// typed order-preserving codecs.
	db, err := xquec.Compress([]byte(doc), xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stats:", db.Stats())
	fmt.Println("(tiny inputs are dominated by the source models; compression")
	fmt.Println(" pays off from a few kilobytes up — see examples/auctionsite)")
	for _, c := range db.Containers() {
		fmt.Printf("  container %-35s kind=%-7s algorithm=%s\n", c.Path, c.Kind, c.Algorithm)
	}

	// 2. Query. The price comparison runs on compressed bytes (the
	// decimal codec is order-preserving); only the returned titles are
	// decompressed.
	res, err := db.Execute(context.Background(), `
	  FOR $b IN document("library.xml")/library/book
	  WHERE $b/price >= 32 AND $b/@year >= 2000
	  RETURN $b/title/text()`, xquec.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	fmt.Println("\nbooks >= 32.00 published since 2000:")
	// Results stream: each title is decompressed and written as it is
	// produced, so output starts before the evaluation finishes.
	if _, err := res.WriteXML(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// 3. Aggregate in one expression, read through the item cursor.
	total, err := db.Execute(context.Background(), `sum(/library/book/price)`, xquec.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer total.Close()
	if item, ok, err := total.Next(); err == nil && ok {
		sum, _ := item.XML()
		fmt.Println("\nsum of all prices:", sum)
	}
}
