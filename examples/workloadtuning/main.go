// Workload tuning: the §3 story end to end. The same document is
// compressed twice — once blind, once with a query workload — and the
// example shows how the cost model changes the container partitioning
// and algorithms, and what that does to the compression factor and to
// a join query's ability to run as a compressed merge join.
//
//	go run ./examples/workloadtuning
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"xquec"
	"xquec/internal/datagen"
)

const joinQuery = `
FOR $p IN document("auction.xml")/site/people/person
LET $a := FOR $t IN document("auction.xml")/site/closed_auctions/closed_auction
          WHERE $t/buyer/@person = $p/@id
          RETURN $t
RETURN <bought person="{$p/name/text()}">{count($a)}</bought>`

func main() {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: 3, Seed: 9})
	fmt.Printf("document: %.1f MB\n\n", float64(len(doc))/1e6)

	// Blind compression: paper default, one ALM model per container.
	blind, err := xquec.Compress(doc, xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blind compression:     CF %.1f%%\n", 100*blind.CompressionFactor())

	// Workload-aware compression: declare the predicates our queries
	// use. The cost model partitions the involved containers and picks
	// algorithms per partition (§3).
	var w xquec.Workload
	w.EqJoin("/site/people/person/@id",
		"/site/closed_auctions/closed_auction/buyer/@person")
	w.IneqConst("/site/closed_auctions/closed_auction/annotation/description/text/#text")
	w.EqConst("/site/people/person/name/#text")

	tuned, err := xquec.Compress(doc, xquec.Options{Workload: &w})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload-aware:        CF %.1f%%\n\n", 100*tuned.CompressionFactor())

	fmt.Println("containers the workload touches:")
	for _, c := range tuned.Containers() {
		for _, p := range w.Paths() {
			if c.Path == p {
				fmt.Printf("  %-62s %-9s group=%s\n", c.Path, c.Algorithm, c.Group)
			}
		}
	}

	fmt.Println("\njoin query on both databases:")
	for _, db := range []struct {
		name string
		db   *xquec.Database
	}{{"blind", blind}, {"tuned", tuned}} {
		t0 := time.Now()
		res, err := db.db.Execute(context.Background(), joinQuery, xquec.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.WriteXML(io.Discard); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %8v  %d items\n", db.name, time.Since(t0).Round(time.Microsecond), res.Len())
		res.Close()
	}
	fmt.Println("\nWhen the join sides share one source model (tuned), the join")
	fmt.Println("runs as a merge join directly on compressed bytes; otherwise it")
	fmt.Println("falls back to a decompressing hash join.")
}
