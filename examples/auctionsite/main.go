// Auction site: the paper's motivating scenario. Generates an
// XMark-style auction document, compresses it, and runs the benchmark
// queries — including the three-way join Q9 whose plan (Fig. 5 of the
// paper) runs the IDREF joins through container join indexes instead of
// nested rescans.
//
//	go run ./examples/auctionsite [-scale 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"xquec"
	"xquec/internal/datagen"
	"xquec/internal/xmarkq"
)

func main() {
	scale := flag.Float64("scale", 2, "XMark scale factor (≈ megabytes)")
	flag.Parse()

	fmt.Printf("generating XMark document at scale %g...\n", *scale)
	doc := datagen.XMark(datagen.XMarkConfig{Scale: *scale, Seed: 7})
	fmt.Printf("document: %.1f MB\n", float64(len(doc))/1e6)

	start := time.Now()
	db, err := xquec.Compress(doc, xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %v: %s\n\n", time.Since(start).Round(time.Millisecond), db.Stats())

	for _, q := range xmarkq.Queries() {
		t0 := time.Now()
		res, err := db.Execute(context.Background(), q.Text, xquec.QueryOptions{})
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		var sb strings.Builder
		if _, err := res.WriteXML(&sb); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		preview := sb.String()
		if len(preview) > 100 {
			preview = preview[:100] + "..."
		}
		fmt.Printf("%-4s %8v  %5d items  %s\n", q.ID, elapsed.Round(time.Microsecond), res.Len(), preview)
		res.Close()
	}
}
