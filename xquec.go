// Package xquec is a Go implementation of XQueC ("Efficient Query
// Evaluation over Compressed XML Data", EDBT 2004): an XQuery processor
// and compressor that stores XML as individually compressed,
// individually accessible values grouped into per-path containers, and
// evaluates queries directly in the compressed domain whenever the
// chosen compression algorithms allow it.
//
// The three public entry points mirror the paper's architecture
// (Fig. 1): Compress is the loader/compressor, Database is the
// compressed repository, and Database.Execute is the query processor.
//
// Execute returns a pull-based Results cursor: items are computed — and
// their values decompressed — one Next at a time, so consumers that
// stop early, stream to a writer, or cancel a context never pay for
// results they do not read.
//
//	db, err := xquec.Compress(doc, xquec.Options{})
//	res, err := db.Execute(ctx, `FOR $p IN document("d")/site/people/person
//	                             WHERE $p/age >= 30 RETURN $p/name/text()`,
//		xquec.QueryOptions{})
//	defer res.Close()
//	n, err := res.WriteXML(os.Stdout) // or: item, ok, err := res.Next()
//
// Repositories are mutable through a Writer: Append stages documents,
// Commit ingests them as append segments sharing the repository's name
// dictionary, and Compact folds the segments back into one repository.
// Readers holding the previous handle keep their snapshot.
//
//	w, err := xquec.NewWriter(db, xquec.Options{})
//	err = w.Append(moreXML)
//	db2, err := w.Commit()    // db is untouched; db2 sees the append
//
// Supplying a query workload lets the cost model (§3 of the paper)
// choose how containers are partitioned into shared source models and
// which algorithm — order-preserving ALM, Huffman, Hu-Tucker, or a
// general-purpose blob codec — compresses each group:
//
//	var w xquec.Workload
//	w.IneqConst("/site/closed_auctions/closed_auction/price/#text")
//	db, err := xquec.Compress(doc, xquec.Options{Workload: &w})
package xquec

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"xquec/internal/costmodel"
	"xquec/internal/engine"
	"xquec/internal/segment"
	"xquec/internal/shard"
	"xquec/internal/storage"
	"xquec/internal/vm"
	"xquec/internal/workload"
	"xquec/internal/xquery"
)

// Workload is the query workload driving compression choices: the set
// of equality / inequality / prefix predicates over container paths.
type Workload = workload.Workload

// Predicate is one workload predicate.
type Predicate = workload.Predicate

// CompressionPlan pins the container partitioning and algorithms
// explicitly, bypassing the cost model.
type CompressionPlan = storage.CompressionPlan

// Options configures Compress.
type Options struct {
	// Workload, when non-nil, triggers the §3 cost-model search: the
	// textual containers referenced by the workload are partitioned
	// into source-model groups with algorithms chosen per group.
	Workload *Workload
	// WorkloadQueries derives the workload directly from the
	// application's queries (the paper's setting); merged with Workload
	// if both are set.
	WorkloadQueries []string
	// SearchSeed seeds the greedy search (it draws predicates at
	// random); 0 means a fixed default, keeping runs reproducible.
	SearchSeed int64
	// Plan overrides the cost model entirely.
	Plan *CompressionPlan
	// Parallelism is the worker count for the compressor's fan-out phase
	// (codec training, value encoding, container sorting). 0 means
	// GOMAXPROCS, 1 forces the serial path; any setting produces a
	// byte-identical repository.
	Parallelism int
	// Shards, when 2 or more, targets the scatter-gather serving tier:
	// the document splits into that many shard repositories at a subtree
	// boundary (round-robin over the partition-level subtrees), all
	// sharing one name dictionary, opened together as one logical
	// Database. Queries over it behave exactly like queries over a
	// single repository — scatterable ones fan out across the shards,
	// the rest run on a fused view — and return identical results.
	// Workload-driven compression choices apply per shard. 0 or 1 builds
	// a single repository.
	Shards int
}

// Database is a compressed, queryable XML document — the paper's
// compressed repository plus its query processor.
//
// A Database handle is immutable, so it is safe for concurrent use on
// the read path: Execute, Prepare, Explain, Stats, Containers and
// Decompress may all run from any number of goroutines over one
// Database (each query gets its own evaluation state; the store,
// containers, summary and codecs are never written after Load/Open).
// Writes never mutate a handle either — a Writer's Commit/Compact
// builds a new Database value and readers of the old one keep their
// snapshot.
type Database struct {
	store *storage.Store

	// set and coord are non-nil for sharded databases (Options.Shards ≥
	// 2 / Open on a shard-set manifest): the corpus lives in N shard
	// repositories sharing one name dictionary, scatterable queries fan
	// out across them, and everything else runs on the lazily fused
	// single store (db.fused).
	set   *shard.Set
	coord *shard.Coordinator

	// segs is non-nil for segmented databases (a Writer's Commit / Open
	// on a segment-set manifest): the corpus is a base segment plus
	// append segments sharing one name dictionary, scatterable queries
	// evaluate per segment and merge in document order, the rest run on
	// the lazily fused single store.
	segs *segment.Set
}

// Compress parses and compresses an XML document into a Database. With
// Options.Shards ≥ 2 the repository is built sharded (see the field
// doc); otherwise it is a single repository.
func Compress(doc []byte, opts Options) (*Database, error) {
	if opts.Shards >= 2 {
		return buildShardSet(doc, opts.Shards, opts)
	}
	plan, err := resolvePlan(doc, opts)
	if err != nil {
		return nil, err
	}
	s, err := storage.Load(doc, storage.LoadOptions{Plan: plan, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return fromStore(s), nil
}

// CompressSharded is Compress targeting the scatter-gather serving
// tier (see Options.Shards).
//
// Deprecated: use Compress with Options.Shards. CompressSharded keeps
// its historical behavior — a shards value of 1 still builds an
// explicit one-shard set, where Compress{Shards: 1} builds a plain
// single repository.
func CompressSharded(doc []byte, shards int, opts Options) (*Database, error) {
	if shards < 1 {
		return nil, fmt.Errorf("xquec: shard count %d < 1", shards)
	}
	return buildShardSet(doc, shards, opts)
}

func buildShardSet(doc []byte, shards int, opts Options) (*Database, error) {
	plan, err := resolvePlan(doc, opts)
	if err != nil {
		return nil, err
	}
	set, err := shard.Build(doc, shards, storage.LoadOptions{Plan: plan, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return fromSet(set), nil
}

// resolvePlan turns Options into a compression plan (nil = per-type
// defaults): explicit Plan wins, otherwise the workload-driven
// cost-model search runs.
func resolvePlan(doc []byte, opts Options) (*CompressionPlan, error) {
	plan := opts.Plan
	w := opts.Workload
	if len(opts.WorkloadQueries) > 0 {
		extracted, err := WorkloadFromQueries(opts.WorkloadQueries...)
		if err != nil {
			return nil, err
		}
		if w != nil {
			extracted.Predicates = append(extracted.Predicates, w.Predicates...)
		}
		w = extracted
	}
	if plan == nil && w != nil && len(w.Predicates) > 0 {
		p, err := PlanFromWorkload(doc, w, opts.SearchSeed)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	return plan, nil
}

// PlanFromWorkload runs the cost-model search (similarity matrix,
// E/I/D predicate matrices, greedy configuration moves) and returns the
// resulting compression plan.
func PlanFromWorkload(doc []byte, w *Workload, seed int64) (*CompressionPlan, error) {
	if seed == 0 {
		seed = 20040314 // fixed default: reproducible choices
	}
	infos, err := costmodel.CollectContainers(doc)
	if err != nil {
		return nil, err
	}
	infos = costmodel.Restrict(infos, w.Paths())
	if len(infos) == 0 {
		return &CompressionPlan{}, nil
	}
	model, err := costmodel.NewModel(infos, w)
	if err != nil {
		return nil, err
	}
	cfg, _ := model.Search(seed)
	groups, algs := model.PlanGroups(cfg)
	return &CompressionPlan{Groups: groups, Algorithms: algs}, nil
}

// WorkloadFromQueries derives a workload from XQuery texts by statically
// resolving every value comparison to its container paths — the paper's
// setting, where W simply is the application's query set.
func WorkloadFromQueries(queries ...string) (*Workload, error) {
	return workload.FromQueries(queries...)
}

// Open loads a Database previously saved with SaveFile — a single
// repository, a shard-set manifest, or a segment-set manifest (all
// detected by content, so a serving pool can open every kind through
// one call).
func Open(path string) (*Database, error) {
	kind, err := manifestKind(path)
	if err != nil {
		return nil, openErr(fmt.Errorf("xquec: open repository %s: %w", path, err))
	}
	switch kind {
	case manifestSegment:
		set, err := segment.Open(path)
		if err != nil {
			return nil, openErr(fmt.Errorf("xquec: open segment set %s: %w", path, err))
		}
		return fromSegs(set), nil
	case manifestShard:
		set, err := shard.OpenSet(path)
		if err != nil {
			return nil, openErr(fmt.Errorf("xquec: open shard set %s: %w", path, err))
		}
		return fromSet(set), nil
	}
	s, err := storage.OpenFile(path)
	if err != nil {
		return nil, openErr(fmt.Errorf("xquec: open repository %s: %w", path, err))
	}
	return fromStore(s), nil
}

const (
	manifestNone    = ""
	manifestShard   = "shard"
	manifestSegment = "segment"
)

// manifestKind sniffs whether path is a set manifest, and which kind:
// by extension first, then by content (manifests are JSON objects
// carrying a format field, repositories start with the XQCR magic).
func manifestKind(path string) (string, error) {
	if strings.HasSuffix(path, shard.ManifestExt) {
		return manifestShard, nil
	}
	if strings.HasSuffix(path, segment.ManifestExt) {
		return manifestSegment, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return manifestNone, err
	}
	var b [1]byte
	_, err = f.Read(b[:])
	f.Close()
	if err != nil {
		return manifestNone, err
	}
	if b[0] != '{' {
		return manifestNone, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return manifestNone, err
	}
	if kind := sniffManifest(data); kind != manifestNone {
		return kind, nil
	}
	// A JSON object with an unknown format: route to the shard-manifest
	// parser so the error names the expected format.
	return manifestShard, nil
}

// sniffManifest classifies raw bytes as a set manifest by the JSON
// format field; manifestNone for anything that is not a recognizable
// manifest.
func sniffManifest(data []byte) string {
	if len(data) == 0 || data[0] != '{' {
		return manifestNone
	}
	var probe struct {
		Format string `json:"format"`
	}
	if json.Unmarshal(data, &probe) != nil {
		return manifestNone
	}
	switch probe.Format {
	case shard.ManifestFormat:
		return manifestShard
	case segment.ManifestFormat:
		return manifestSegment
	}
	return manifestNone
}

// OpenBytes loads a Database from serialized repository bytes. Manifest
// bytes are detected the same way Open detects manifest files — but a
// manifest only references its shard/segment files, it does not contain
// them, so OpenBytes rejects one with a typed ErrCorruptRepository
// explaining the mismatch instead of failing on the magic check.
func OpenBytes(data []byte) (*Database, error) {
	switch sniffManifest(data) {
	case manifestShard:
		return nil, tagErr(ErrCorruptRepository, fmt.Errorf(
			"xquec: load repository: data is a shard-set manifest (%s), which references external shard files rather than containing them; open it from its path with Open", shard.ManifestFormat))
	case manifestSegment:
		return nil, tagErr(ErrCorruptRepository, fmt.Errorf(
			"xquec: load repository: data is a segment-set manifest (%s), which references external segment files rather than containing them; open it from its path with Open", segment.ManifestFormat))
	}
	s, err := storage.LoadBinary(data)
	if err != nil {
		return nil, openErr(fmt.Errorf("xquec: load repository: %w", err))
	}
	return fromStore(s), nil
}

func fromStore(s *storage.Store) *Database {
	return &Database{store: s}
}

func fromSet(set *shard.Set) *Database {
	return &Database{set: set, coord: shard.NewCoordinator(set)}
}

func fromSegs(set *segment.Set) *Database {
	return &Database{segs: set}
}

// Sharded reports whether the database is a shard set.
func (db *Database) Sharded() bool { return db.set != nil }

// Shards returns the shard count (1 for a single repository).
func (db *Database) Shards() int {
	if db.set != nil {
		return db.set.Shards()
	}
	return 1
}

// Segmented reports whether the database is a segment set (opened from
// a segment-set manifest or produced by a Writer).
func (db *Database) Segmented() bool { return db.segs != nil }

// Segments returns the segment count (1 for an unsegmented database).
func (db *Database) Segments() int {
	if db.segs != nil {
		return db.segs.Segments()
	}
	return 1
}

// TopologyKey identifies the repository instance and its shard/segment
// topology for cache keying: plan caches must include it so prepared
// statements never outlive a swap to a repository with a different
// store or layout. A Writer's Commit/Compact produces a Database with
// a fresh key (new set value, advanced generation), so caches keyed on
// it invalidate on swap.
func (db *Database) TopologyKey() string {
	if db.set != nil {
		return fmt.Sprintf("set=%p;%s", db.set, db.set.TopologyKey())
	}
	if db.segs != nil {
		return fmt.Sprintf("segset=%p;%s", db.segs, db.segs.TopologyKey())
	}
	return fmt.Sprintf("store=%p", db.store)
}

// fused returns the single-store view: the store itself, or the
// shard/segment set's lazily reconstructed fusion.
func (db *Database) fused(parallelism int) (*storage.Store, error) {
	if db.set != nil {
		s, err := db.set.Fused(parallelism)
		if err != nil {
			return nil, tagErr(ErrCorruptRepository, err)
		}
		return s, nil
	}
	if db.segs != nil {
		s, err := db.segs.Fused(parallelism)
		if err != nil {
			return nil, tagErr(ErrCorruptRepository, err)
		}
		return s, nil
	}
	return db.store, nil
}

// SaveFile persists the database: one repository file, or — for a
// sharded or segmented database — the manifest at path plus one
// repository file per shard/segment next to it.
func (db *Database) SaveFile(path string) error {
	if db.set != nil {
		return db.set.Save(path)
	}
	if db.segs != nil {
		return db.segs.Save(path)
	}
	return db.store.SaveFile(path)
}

// Bytes serializes the database. For a sharded database this is the
// fused single-repository serialization (shard sets are a multi-file
// layout; use SaveFile to persist one); nil if fusion fails.
func (db *Database) Bytes() []byte {
	s, err := db.fused(0)
	if err != nil {
		return nil
	}
	return s.AppendBinary(nil)
}

// Decompress reconstructs the original XML document (modulo
// insignificant whitespace) from the compressed repository — for a
// sharded database, by re-interleaving the partitioned subtrees in
// global document order.
func (db *Database) Decompress() ([]byte, error) {
	if db.set != nil {
		return db.set.FuseXML()
	}
	if db.segs != nil {
		return db.segs.FuseXML()
	}
	return db.store.Serialize(nil, 1)
}

// QueryOptions configures one evaluation.
type QueryOptions struct {
	// Parallelism is the intra-query worker budget: partitioned decoding
	// scans, structural joins and container fan-outs split their work
	// across up to this many workers. 0 means GOMAXPROCS, 1 forces the
	// serial path (mirroring Options.Parallelism on the compressor).
	// Results are byte-identical at every setting, and partitioning only
	// engages above per-operator work floors, so small queries never pay
	// fan-out overhead.
	Parallelism int

	// PartialResults, on a sharded database, keeps a scattered query
	// alive when individual shards fail: the failed shard's items are
	// dropped, the rest merge normally, and Results.Partial reports
	// true. The default (false) is fail-fast — any shard failure fails
	// the query. Context expiry always fails the query under either
	// policy. Ignored for single-repository databases and for queries
	// that fall back to the fused store.
	PartialResults bool
	// HedgeAfter, on a sharded database, re-dispatches a shard whose
	// stream has produced nothing for this long (straggler hedging);
	// the first evaluation to deliver wins and the other is cancelled.
	// Results are identical with or without hedging. 0 disables.
	HedgeAfter time.Duration
	// ShardFanout bounds how many shards evaluate concurrently on a
	// sharded database. 0 means all shards at once.
	ShardFanout int
}

// EvalEngine reports which evaluator queries run on: "vm" (the
// default — plans compile to bytecode, see internal/vm) or "tree" (the
// tree-walking oracle, selected with XQUEC_EVAL=tree). The setting is
// read per evaluation, so tests can switch engines between calls.
func EvalEngine() string {
	if vm.Enabled() {
		return "vm"
	}
	return "tree"
}

// run is the single evaluation entry point behind Execute and every
// legacy Query/Run wrapper: pick the evaluator, build the streaming
// cursor, and prime its first item so errors that occur before any
// output — an expired deadline, an unbound variable, a failing
// aggregate — surface here rather than on the first Next. Each call
// gets its own evaluation state.
//
// By default the compiled program's VM loop feeds the cursor directly;
// XQUEC_EVAL=tree (or a query shape the compiler refused) falls back
// to a fresh tree-walking engine over the same store.
//
// On a sharded database the scatter analyzer decides the path: provably
// decomposable queries fan out across the shards (each worker runs its
// own per-shard compiled program) and merge in global document order;
// the rest run on the fused single-store view. On a segmented database
// the segment analyzer does the same per segment, merging streams
// through the k-way rank heap with rank = segment index. All paths
// return byte-identical results to a single-repository database over
// the same corpus.
func (p *Prepared) run(ctx context.Context, opts QueryOptions) (*Results, error) {
	db := p.db
	st := db.store
	if db.set != nil {
		if dec := shard.Analyze(p.expr, db.set); dec.Scatter {
			cur, err := db.coord.ScatterExpr(ctx, p.text, p.expr, shard.Options{
				Partial:     opts.PartialResults,
				HedgeAfter:  opts.HedgeAfter,
				Fanout:      opts.ShardFanout,
				Parallelism: opts.Parallelism,
			})
			if err != nil {
				return nil, tagErr(ErrEval, err)
			}
			if err := cur.Prime(); err != nil {
				cur.Close()
				return nil, tagErr(ErrEval, err)
			}
			return &Results{cur: cur}, nil
		}
		shard.CountFallback()
		var err error
		if st, err = db.fused(opts.Parallelism); err != nil {
			return nil, err
		}
	}
	if db.segs != nil {
		switch {
		case db.segs.Segments() == 1:
			// A single-segment set is just its base store; skip the merge
			// machinery entirely.
			st = db.segs.Stores[0]
		default:
			if dec := segment.Analyze(p.expr, db.segs); dec.Scatter {
				var progFor func(*storage.Store) *vm.Program
				if vm.Enabled() {
					progFor = p.program
				}
				cur, err := segment.Eval(db.segs, p.expr, segment.EvalOptions{
					Ctx:         ctx,
					Parallelism: opts.Parallelism,
					ProgramFor:  progFor,
					Text:        p.text,
				})
				if err != nil {
					return nil, tagErr(ErrEval, err)
				}
				if err := cur.Prime(); err != nil {
					cur.Close()
					return nil, tagErr(ErrEval, err)
				}
				return &Results{cur: cur}, nil
			}
			var err error
			if st, err = db.fused(opts.Parallelism); err != nil {
				return nil, err
			}
		}
	}
	if vm.Enabled() {
		if prog := p.program(st); prog != nil {
			res, err := prog.Run(vm.RunOptions{Ctx: ctx, Parallelism: opts.Parallelism})
			if err != nil {
				return nil, tagErr(ErrEval, err)
			}
			if err := res.Prime(); err != nil {
				return nil, tagErr(ErrEval, err)
			}
			return &Results{res: res}, nil
		}
	}
	res, err := engine.New(st).WithContext(ctx).WithParallelism(opts.Parallelism).EvalStream(p.expr)
	if err != nil {
		return nil, tagErr(ErrEval, err)
	}
	if err := res.Prime(); err != nil {
		return nil, tagErr(ErrEval, err)
	}
	return &Results{res: res}, nil
}

// Execute parses and evaluates an XQuery expression under ctx with
// per-call options — the single query entry point (the legacy Query,
// QueryContext and QueryWith are thin wrappers over it). Safe for
// concurrent use: the per-query state (join-index caches, cursor
// position) is private to the call. The returned Results is a pull
// cursor; consume it with Next/WriteXML and Close it.
//
// The evaluation loop and the result cursor both poll ctx, so a
// deadline or a client disconnect aborts a long evaluation — or a long
// result iteration — with ctx.Err(). Queries at different Parallelism
// settings return identical results; a zero QueryOptions is the
// default evaluation.
func (db *Database) Execute(ctx context.Context, q string, opts QueryOptions) (*Results, error) {
	prep, err := db.Prepare(q)
	if err != nil {
		return nil, err
	}
	return prep.run(ctx, opts)
}

// Query evaluates q with background context and default options.
//
// Deprecated: use Execute.
func (db *Database) Query(q string) (*Results, error) {
	return db.Execute(context.Background(), q, QueryOptions{})
}

// QueryContext evaluates q under ctx with default options.
//
// Deprecated: use Execute.
func (db *Database) QueryContext(ctx context.Context, q string) (*Results, error) {
	return db.Execute(ctx, q, QueryOptions{})
}

// QueryWith evaluates q under ctx with opts.
//
// Deprecated: use Execute.
func (db *Database) QueryWith(ctx context.Context, q string, opts QueryOptions) (*Results, error) {
	return db.Execute(ctx, q, opts)
}

// Prepare parses — and, on the VM engine, compiles — a query once for
// repeated execution, skipping the parser and compiler on every
// subsequent run: the unit a serving plan cache stores. Compilation is
// eager here so the cache can account the compiled program's bytes at
// admission time. The prepared query is bound to this Database and is
// safe for concurrent Run calls: the parsed form and the compiled
// program are never mutated and every execution gets fresh run state.
func (db *Database) Prepare(q string) (*Prepared, error) {
	expr, err := xquery.Parse(q)
	if err != nil {
		return nil, tagErr(ErrParse, err)
	}
	p := &Prepared{db: db, expr: expr, text: q}
	if vm.Enabled() {
		// Sharded databases compile against shard 0: the shards share
		// one summary shape, so its program is every worker's program
		// for size/len reporting (workers compile their own copy).
		p.program(p.planStore())
	}
	return p, nil
}

// Prepared is a parsed query bound to a Database, plus its lazily
// compiled per-store bytecode programs.
type Prepared struct {
	db   *Database
	expr xquery.Expr
	text string

	mu    sync.Mutex
	progs map[*storage.Store]*vm.Program // nil entry: compile declined, use tree
}

// planStore is the store whose compiled program represents this query
// for reporting (the store itself; shard 0 when sharded; the base
// segment when segmented).
func (p *Prepared) planStore() *storage.Store {
	if p.db.set != nil {
		return p.db.set.Stores[0]
	}
	if p.db.segs != nil {
		return p.db.segs.Stores[0]
	}
	return p.db.store
}

// program returns the compiled program for st, compiling on first use.
// A failed compilation is cached as nil, pinning the query to the
// tree-walking fallback.
func (p *Prepared) program(st *storage.Store) *vm.Program {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prog, ok := p.progs[st]; ok {
		return prog
	}
	prog, err := vm.Compile(p.expr, st, p.text)
	if err != nil {
		prog = nil
	}
	if p.progs == nil {
		p.progs = map[*storage.Store]*vm.Program{}
	}
	p.progs[st] = prog
	return prog
}

// Text returns the original query text.
func (p *Prepared) Text() string { return p.text }

// EngineLabel reports how run will evaluate this statement: "vm" when
// a compiled program exists and the VM is enabled, else "tree".
func (p *Prepared) EngineLabel() string {
	if vm.Enabled() && p.program(p.planStore()) != nil {
		return "vm"
	}
	return "tree"
}

// ProgramLen returns the compiled program's instruction count (0 when
// the query runs on the tree walker).
func (p *Prepared) ProgramLen() int {
	if prog := p.program(p.planStore()); prog != nil {
		return prog.Len()
	}
	return 0
}

// CostBytes estimates the prepared statement's resident size for
// byte-based plan-cache accounting: the compiled program's bytes, or a
// query-text-proportional floor for tree-only statements.
func (p *Prepared) CostBytes() int {
	if prog := p.program(p.planStore()); prog != nil {
		return prog.SizeBytes()
	}
	return 256 + 2*len(p.text)
}

// Disassemble returns the compiled program's instruction listing
// (empty when the query runs on the tree walker).
func (p *Prepared) Disassemble() string {
	if prog := p.program(p.planStore()); prog != nil {
		return prog.Disassemble()
	}
	return ""
}

// Execute evaluates the prepared query under ctx with per-call options
// — the single prepared-statement entry point (the legacy Run,
// RunContext and RunWith are thin wrappers over it). See
// Database.Execute for the ctx and options semantics.
func (p *Prepared) Execute(ctx context.Context, opts QueryOptions) (*Results, error) {
	return p.run(ctx, opts)
}

// Run evaluates the prepared query with background context and default
// options.
//
// Deprecated: use Execute.
func (p *Prepared) Run() (*Results, error) {
	return p.Execute(context.Background(), QueryOptions{})
}

// RunContext evaluates the prepared query under ctx with default
// options.
//
// Deprecated: use Execute.
func (p *Prepared) RunContext(ctx context.Context) (*Results, error) {
	return p.Execute(ctx, QueryOptions{})
}

// RunWith evaluates the prepared query under ctx with per-call options.
//
// Deprecated: use Execute.
func (p *Prepared) RunWith(ctx context.Context, opts QueryOptions) (*Results, error) {
	return p.Execute(ctx, opts)
}

// Explain renders the evaluation strategy for a query without running
// it: summary accesses, compressed-domain predicate pushdowns, and the
// join strategies (compressed merge join vs decompressing hash join).
// On a sharded database the scatter decision leads, followed by the
// per-shard plan (shard repositories share one summary shape, so shard
// 0's plan is every shard's plan).
func (db *Database) Explain(q string) (string, error) {
	if db.set == nil && db.segs == nil {
		return engine.New(db.store).Explain(q)
	}
	expr, err := xquery.Parse(q)
	if err != nil {
		return "", tagErr(ErrParse, err)
	}
	var head string
	var st *storage.Store
	if db.set != nil {
		st = db.set.Stores[0]
		if dec := shard.Analyze(expr, db.set); dec.Scatter {
			head = fmt.Sprintf("scatter across %d shards, merge by document order\n", db.set.Shards())
		} else {
			head = fmt.Sprintf("no scatter (%s); evaluate on fused store\n", dec.Reason)
		}
	} else {
		st = db.segs.Stores[0]
		switch {
		case db.segs.Segments() == 1:
			head = "single segment; evaluate directly\n"
		default:
			if dec := segment.Analyze(expr, db.segs); dec.Scatter {
				head = fmt.Sprintf("scatter across %d segments, merge by segment order\n", db.segs.Segments())
			} else {
				head = fmt.Sprintf("no scatter (%s); evaluate on fused store\n", dec.Reason)
			}
		}
	}
	plan, err := engine.New(st).Explain(q)
	if err != nil {
		return "", err
	}
	return head + plan, nil
}

// ExplainProgram returns the compiled bytecode program's disassembly
// for a query — opcodes, operands, and the containers and summary
// paths resolved at compile time — the companion to Explain's
// tree-level plan. On a sharded database the program shown is shard
// 0's (shard repositories share one summary shape). An empty string
// means the query runs on the tree walker.
func (db *Database) ExplainProgram(q string) (string, error) {
	expr, err := xquery.Parse(q)
	if err != nil {
		return "", tagErr(ErrParse, err)
	}
	st := db.store
	if db.set != nil {
		st = db.set.Stores[0]
	}
	if db.segs != nil {
		st = db.segs.Stores[0]
	}
	prog, err := vm.Compile(expr, st, q)
	if err != nil {
		return "", nil
	}
	return prog.Disassemble(), nil
}

// MustQuery is Execute for examples and tests; it panics on error.
func (db *Database) MustQuery(q string) *Results {
	r, err := db.Execute(context.Background(), q, QueryOptions{})
	if err != nil {
		panic(err)
	}
	return r
}

// CompressionFactor is the paper's CF metric: 1 − compressed/original
// for the serialized repository (summed over the shards/segments when
// sharded or segmented).
func (db *Database) CompressionFactor() float64 {
	if db.set == nil && db.segs == nil {
		return db.store.CompressionFactor()
	}
	s := db.Stats()
	if s.OriginalBytes == 0 {
		return 0
	}
	return 1 - float64(s.CompressedBytes)/float64(s.OriginalBytes)
}

// memberStores lists every physical store of the database: the single
// repository, or all shard/segment members.
func (db *Database) memberStores() []*storage.Store {
	switch {
	case db.set != nil:
		return db.set.Stores
	case db.segs != nil:
		return db.segs.Stores
	}
	return []*storage.Store{db.store}
}

// Footprint aggregates the in-memory component sizes over every member
// repository (base store plus shard or segment members), so
// AccessOverheadFactor reflects the whole database rather than just
// the base store.
func (db *Database) Footprint() storage.Footprint {
	var f storage.Footprint
	for _, st := range db.memberStores() {
		f = f.Add(st.Footprint())
	}
	return f
}

// ResidentBytes is the database's total in-memory size across all
// member repositories — what the server exports per repository as the
// xquecd_repo_resident_bytes gauge.
func (db *Database) ResidentBytes() int { return db.Footprint().Total() }

// StructureKind names the resident structure backend ("succinct" or
// "records" — see the XQUEC_STRUCT escape hatch).
func (db *Database) StructureKind() string {
	return db.memberStores()[0].StructureKind().String()
}

// StructureBitsPerNode reports the density of the succinct structure
// encoding — paren bits, rank/select and shortcut directories, and
// node marks — aggregated over all member repositories, in bits per
// tree node (elements + attributes + text values). Zero when the
// record backend is resident.
func (db *Database) StructureBitsPerNode() float64 {
	bits, nodes := 0, 0
	for _, s := range db.memberStores() {
		bp, marks, n := s.StructureStats()
		bits += bp + marks
		nodes += n
	}
	if nodes == 0 {
		return 0
	}
	return float64(bits) / float64(nodes)
}

// Stats summarizes the database; for a sharded or segmented database
// the sizes and counts aggregate over all member repositories (spine
// duplication means a shard set carries slightly more nodes than the
// single repository; a segment set duplicates only the root element
// per segment).
func (db *Database) Stats() Stats {
	switch {
	case db.set != nil:
		return aggStats(db.set.Stores, db.set.Man.OriginalSize)
	case db.segs != nil:
		return aggStats(db.segs.Stores, db.segs.OriginalSize())
	}
	return storeStats(db.store, db.store.OriginalSize)
}

func aggStats(stores []*storage.Store, original int) Stats {
	agg := Stats{OriginalBytes: original}
	for _, st := range stores {
		s := storeStats(st, 0)
		agg.CompressedBytes += s.CompressedBytes
		agg.Nodes += s.Nodes
		agg.Containers += s.Containers
		agg.SourceModels += s.SourceModels
		agg.SummaryNodes += s.SummaryNodes
		agg.InMemoryTotal += s.InMemoryTotal
		agg.InMemoryMinimal += s.InMemoryMinimal
	}
	return agg
}

func storeStats(st *storage.Store, original int) Stats {
	f := st.Footprint()
	if original == 0 {
		original = st.OriginalSize
	}
	return Stats{
		OriginalBytes:   original,
		CompressedBytes: len(st.AppendBinary(nil)),
		Nodes:           st.NumNodes(),
		Containers:      len(st.Containers),
		SourceModels:    len(st.Models),
		SummaryNodes:    len(st.Sum.Nodes()),
		InMemoryTotal:   f.Total(),
		InMemoryMinimal: f.Minimal(),
	}
}

// IngestStats reports the compressor pipeline's phase timings and
// worker count for this database (shard 0's pipeline when sharded —
// shards ingest concurrently, so one shard's wall time is
// representative). Zero for databases opened from disk — the timings
// describe a Compress run, not the repository itself.
func (db *Database) IngestStats() storage.BuildStats {
	if db.set != nil {
		return db.set.Stores[0].Build
	}
	if db.segs != nil {
		return db.segs.Stores[0].Build
	}
	return db.store.Build
}

// Stats is a database summary.
type Stats struct {
	OriginalBytes   int
	CompressedBytes int
	Nodes           int
	Containers      int
	SourceModels    int
	SummaryNodes    int
	InMemoryTotal   int // including access-support structures
	InMemoryMinimal int // without them (§2.2 ablation)
}

func (s Stats) String() string {
	return fmt.Sprintf("original=%dB compressed=%dB (CF %.1f%%) nodes=%d containers=%d models=%d summary=%d",
		s.OriginalBytes, s.CompressedBytes,
		100*(1-float64(s.CompressedBytes)/float64(s.OriginalBytes)),
		s.Nodes, s.Containers, s.SourceModels, s.SummaryNodes)
}

// ContainerInfo describes one value container.
type ContainerInfo struct {
	Path      string
	Kind      string
	Algorithm string
	Group     string
	Records   int
	Bytes     int // compressed payload
	Shard     int // owning shard (0 for unsharded databases)
	Segment   int // owning segment (0 for unsegmented databases)
}

// Containers lists the database's value containers. For a sharded or
// segmented database the listing concatenates every member's
// containers (Shard/Segment identifies the owner; the same path
// appears once per member holding values for it).
func (db *Database) Containers() []ContainerInfo {
	if db.set != nil {
		var out []ContainerInfo
		for si, st := range db.set.Stores {
			for _, ci := range storeContainers(st) {
				ci.Shard = si
				out = append(out, ci)
			}
		}
		return out
	}
	if db.segs != nil {
		var out []ContainerInfo
		for si, st := range db.segs.Stores {
			for _, ci := range storeContainers(st) {
				ci.Segment = si
				out = append(out, ci)
			}
		}
		return out
	}
	return storeContainers(db.store)
}

func storeContainers(st *storage.Store) []ContainerInfo {
	out := make([]ContainerInfo, 0, len(st.Containers))
	for _, c := range st.Containers {
		out = append(out, ContainerInfo{
			Path:      c.Path,
			Kind:      c.Kind.String(),
			Algorithm: c.Codec().Name(),
			Group:     c.Group,
			Records:   c.Len(),
			Bytes:     c.CompressedBytes(),
		})
	}
	return out
}

// ParseQuery checks a query for syntax errors without running it.
func ParseQuery(q string) error {
	_, err := xquery.Parse(q)
	return tagErr(ErrParse, err)
}
