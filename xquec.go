// Package xquec is a Go implementation of XQueC ("Efficient Query
// Evaluation over Compressed XML Data", EDBT 2004): an XQuery processor
// and compressor that stores XML as individually compressed,
// individually accessible values grouped into per-path containers, and
// evaluates queries directly in the compressed domain whenever the
// chosen compression algorithms allow it.
//
// The three public entry points mirror the paper's architecture
// (Fig. 1): Compress is the loader/compressor, Database is the
// compressed repository, and Database.Query is the query processor.
//
// Query returns a pull-based Results cursor: items are computed — and
// their values decompressed — one Next at a time, so consumers that
// stop early, stream to a writer, or cancel a context never pay for
// results they do not read.
//
//	db, err := xquec.Compress(doc, xquec.Options{})
//	res, err := db.Query(`FOR $p IN document("d")/site/people/person
//	                      WHERE $p/age >= 30 RETURN $p/name/text()`)
//	defer res.Close()
//	n, err := res.WriteXML(os.Stdout) // or: item, ok, err := res.Next()
//
// Supplying a query workload lets the cost model (§3 of the paper)
// choose how containers are partitioned into shared source models and
// which algorithm — order-preserving ALM, Huffman, Hu-Tucker, or a
// general-purpose blob codec — compresses each group:
//
//	var w xquec.Workload
//	w.IneqConst("/site/closed_auctions/closed_auction/price/#text")
//	db, err := xquec.Compress(doc, xquec.Options{Workload: &w})
package xquec

import (
	"context"
	"fmt"

	"xquec/internal/costmodel"
	"xquec/internal/engine"
	"xquec/internal/storage"
	"xquec/internal/workload"
	"xquec/internal/xquery"
)

// Workload is the query workload driving compression choices: the set
// of equality / inequality / prefix predicates over container paths.
type Workload = workload.Workload

// Predicate is one workload predicate.
type Predicate = workload.Predicate

// CompressionPlan pins the container partitioning and algorithms
// explicitly, bypassing the cost model.
type CompressionPlan = storage.CompressionPlan

// Options configures Compress.
type Options struct {
	// Workload, when non-nil, triggers the §3 cost-model search: the
	// textual containers referenced by the workload are partitioned
	// into source-model groups with algorithms chosen per group.
	Workload *Workload
	// WorkloadQueries derives the workload directly from the
	// application's queries (the paper's setting); merged with Workload
	// if both are set.
	WorkloadQueries []string
	// SearchSeed seeds the greedy search (it draws predicates at
	// random); 0 means a fixed default, keeping runs reproducible.
	SearchSeed int64
	// Plan overrides the cost model entirely.
	Plan *CompressionPlan
	// Parallelism is the worker count for the compressor's fan-out phase
	// (codec training, value encoding, container sorting). 0 means
	// GOMAXPROCS, 1 forces the serial path; any setting produces a
	// byte-identical repository.
	Parallelism int
}

// Database is a compressed, queryable XML document — the paper's
// compressed repository plus its query processor.
//
// The repository is immutable after loading, so a Database is safe for
// concurrent use on the read path: Query, QueryContext, Prepare,
// Explain, Stats, Containers and Decompress may all run from any
// number of goroutines over one Database (each query gets its own
// evaluation state; the store, containers, summary and codecs are
// never written after Load/Open).
type Database struct {
	store *storage.Store
}

// Compress parses and compresses an XML document into a Database.
func Compress(doc []byte, opts Options) (*Database, error) {
	plan := opts.Plan
	w := opts.Workload
	if len(opts.WorkloadQueries) > 0 {
		extracted, err := WorkloadFromQueries(opts.WorkloadQueries...)
		if err != nil {
			return nil, err
		}
		if w != nil {
			extracted.Predicates = append(extracted.Predicates, w.Predicates...)
		}
		w = extracted
	}
	if plan == nil && w != nil && len(w.Predicates) > 0 {
		p, err := PlanFromWorkload(doc, w, opts.SearchSeed)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	s, err := storage.Load(doc, storage.LoadOptions{Plan: plan, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return fromStore(s), nil
}

// PlanFromWorkload runs the cost-model search (similarity matrix,
// E/I/D predicate matrices, greedy configuration moves) and returns the
// resulting compression plan.
func PlanFromWorkload(doc []byte, w *Workload, seed int64) (*CompressionPlan, error) {
	if seed == 0 {
		seed = 20040314 // fixed default: reproducible choices
	}
	infos, err := costmodel.CollectContainers(doc)
	if err != nil {
		return nil, err
	}
	infos = costmodel.Restrict(infos, w.Paths())
	if len(infos) == 0 {
		return &CompressionPlan{}, nil
	}
	model, err := costmodel.NewModel(infos, w)
	if err != nil {
		return nil, err
	}
	cfg, _ := model.Search(seed)
	groups, algs := model.PlanGroups(cfg)
	return &CompressionPlan{Groups: groups, Algorithms: algs}, nil
}

// WorkloadFromQueries derives a workload from XQuery texts by statically
// resolving every value comparison to its container paths — the paper's
// setting, where W simply is the application's query set.
func WorkloadFromQueries(queries ...string) (*Workload, error) {
	return workload.FromQueries(queries...)
}

// Open loads a Database previously saved with SaveFile.
func Open(path string) (*Database, error) {
	s, err := storage.OpenFile(path)
	if err != nil {
		return nil, openErr(fmt.Errorf("xquec: open repository %s: %w", path, err))
	}
	return fromStore(s), nil
}

// OpenBytes loads a Database from serialized bytes.
func OpenBytes(data []byte) (*Database, error) {
	s, err := storage.LoadBinary(data)
	if err != nil {
		return nil, openErr(fmt.Errorf("xquec: load repository: %w", err))
	}
	return fromStore(s), nil
}

func fromStore(s *storage.Store) *Database {
	return &Database{store: s}
}

// SaveFile persists the database.
func (db *Database) SaveFile(path string) error { return db.store.SaveFile(path) }

// Bytes serializes the database.
func (db *Database) Bytes() []byte { return db.store.AppendBinary(nil) }

// Decompress reconstructs the original XML document (modulo
// insignificant whitespace) from the compressed repository.
func (db *Database) Decompress() ([]byte, error) {
	return db.store.Serialize(nil, 1)
}

// QueryOptions configures one evaluation.
type QueryOptions struct {
	// Parallelism is the intra-query worker budget: partitioned decoding
	// scans, structural joins and container fan-outs split their work
	// across up to this many workers. 0 means GOMAXPROCS, 1 forces the
	// serial path (mirroring Options.Parallelism on the compressor).
	// Results are byte-identical at every setting, and partitioning only
	// engages above per-operator work floors, so small queries never pay
	// fan-out overhead.
	Parallelism int
}

// run is the single evaluation entry point behind Query, QueryContext,
// QueryWith, Prepared.Run, Prepared.RunContext and Prepared.RunWith:
// arm a fresh engine with ctx and the worker budget, build the
// streaming cursor, and prime its first item so errors that occur
// before any output — an expired deadline, an unbound variable, a
// failing aggregate — surface here rather than on the first Next.
// Each call gets its own engine, so evaluation state is never shared.
func (db *Database) run(ctx context.Context, expr xquery.Expr, opts QueryOptions) (*Results, error) {
	res, err := engine.New(db.store).WithContext(ctx).WithParallelism(opts.Parallelism).EvalStream(expr)
	if err != nil {
		return nil, tagErr(ErrEval, err)
	}
	if err := res.Prime(); err != nil {
		return nil, tagErr(ErrEval, err)
	}
	return &Results{res: res}, nil
}

// Query parses and evaluates an XQuery expression. Safe for concurrent
// use: the per-query state (join-index caches, cursor position) is
// private to the call. The returned Results is a pull cursor; consume
// it with Next/WriteXML (or the legacy SerializeXML) and Close it.
func (db *Database) Query(q string) (*Results, error) {
	return db.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: the evaluation loop and the
// result cursor both poll ctx, so a deadline or a client disconnect
// aborts a long evaluation — or a long result iteration — with
// ctx.Err() (context.DeadlineExceeded / Canceled).
func (db *Database) QueryContext(ctx context.Context, q string) (*Results, error) {
	return db.QueryWith(ctx, q, QueryOptions{})
}

// QueryWith is QueryContext with per-call evaluation options (worker
// budget). Queries at different Parallelism settings return identical
// results.
func (db *Database) QueryWith(ctx context.Context, q string, opts QueryOptions) (*Results, error) {
	expr, err := xquery.Parse(q)
	if err != nil {
		return nil, tagErr(ErrParse, err)
	}
	return db.run(ctx, expr, opts)
}

// Prepare parses a query once for repeated execution, skipping the
// parser on every subsequent run — the unit a serving plan cache
// stores. The prepared query is bound to this Database and is safe for
// concurrent Run calls: the parsed form is never mutated and every
// execution gets a fresh engine.
func (db *Database) Prepare(q string) (*Prepared, error) {
	expr, err := xquery.Parse(q)
	if err != nil {
		return nil, tagErr(ErrParse, err)
	}
	return &Prepared{db: db, expr: expr, text: q}, nil
}

// Prepared is a parsed query bound to a Database.
type Prepared struct {
	db   *Database
	expr xquery.Expr
	text string
}

// Text returns the original query text.
func (p *Prepared) Text() string { return p.text }

// Run evaluates the prepared query.
func (p *Prepared) Run() (*Results, error) {
	return p.db.run(context.Background(), p.expr, QueryOptions{})
}

// RunContext evaluates the prepared query under ctx (see QueryContext).
func (p *Prepared) RunContext(ctx context.Context) (*Results, error) {
	return p.db.run(ctx, p.expr, QueryOptions{})
}

// RunWith evaluates the prepared query under ctx with per-call options
// (see QueryWith).
func (p *Prepared) RunWith(ctx context.Context, opts QueryOptions) (*Results, error) {
	return p.db.run(ctx, p.expr, opts)
}

// Explain renders the evaluation strategy for a query without running
// it: summary accesses, compressed-domain predicate pushdowns, and the
// join strategies (compressed merge join vs decompressing hash join).
func (db *Database) Explain(q string) (string, error) {
	return engine.New(db.store).Explain(q)
}

// MustQuery is Query for examples and tests; it panics on error.
func (db *Database) MustQuery(q string) *Results {
	r, err := db.Query(q)
	if err != nil {
		panic(err)
	}
	return r
}

// CompressionFactor is the paper's CF metric: 1 − compressed/original
// for the serialized repository.
func (db *Database) CompressionFactor() float64 { return db.store.CompressionFactor() }

// Stats summarizes the database.
func (db *Database) Stats() Stats {
	f := db.store.Footprint()
	return Stats{
		OriginalBytes:   db.store.OriginalSize,
		CompressedBytes: len(db.store.AppendBinary(nil)),
		Nodes:           db.store.NumNodes(),
		Containers:      len(db.store.Containers),
		SourceModels:    len(db.store.Models),
		SummaryNodes:    len(db.store.Sum.Nodes()),
		InMemoryTotal:   f.Total(),
		InMemoryMinimal: f.Minimal(),
	}
}

// IngestStats reports the compressor pipeline's phase timings and
// worker count for this database. Zero for databases opened from disk —
// the timings describe a Compress run, not the repository itself.
func (db *Database) IngestStats() storage.BuildStats {
	return db.store.Build
}

// Stats is a database summary.
type Stats struct {
	OriginalBytes   int
	CompressedBytes int
	Nodes           int
	Containers      int
	SourceModels    int
	SummaryNodes    int
	InMemoryTotal   int // including access-support structures
	InMemoryMinimal int // without them (§2.2 ablation)
}

func (s Stats) String() string {
	return fmt.Sprintf("original=%dB compressed=%dB (CF %.1f%%) nodes=%d containers=%d models=%d summary=%d",
		s.OriginalBytes, s.CompressedBytes,
		100*(1-float64(s.CompressedBytes)/float64(s.OriginalBytes)),
		s.Nodes, s.Containers, s.SourceModels, s.SummaryNodes)
}

// ContainerInfo describes one value container.
type ContainerInfo struct {
	Path      string
	Kind      string
	Algorithm string
	Group     string
	Records   int
	Bytes     int // compressed payload
}

// Containers lists the database's value containers.
func (db *Database) Containers() []ContainerInfo {
	out := make([]ContainerInfo, 0, len(db.store.Containers))
	for _, c := range db.store.Containers {
		out = append(out, ContainerInfo{
			Path:      c.Path,
			Kind:      c.Kind.String(),
			Algorithm: c.Codec().Name(),
			Group:     c.Group,
			Records:   c.Len(),
			Bytes:     c.CompressedBytes(),
		})
	}
	return out
}

// ParseQuery checks a query for syntax errors without running it.
func ParseQuery(q string) error {
	_, err := xquery.Parse(q)
	return tagErr(ErrParse, err)
}
