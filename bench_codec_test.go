// Codec kernel microbenchmarks: raw encode/decode MB/s per string
// codec, measured directly at the compress.Codec level on a realistic
// XMark prose container. `make bench-codec` appends the results to
// BENCH_codec.json; the measured decode ratios are the provenance of
// the DecodeCost constants in internal/costmodel (see EXPERIMENTS.md
// "Codec kernel throughput").
package xquec

import (
	"sync"
	"testing"

	"xquec/internal/compress"
	"xquec/internal/compress/alm"
	"xquec/internal/compress/blob"
	"xquec/internal/compress/huffman"
	"xquec/internal/compress/hutucker"
	"xquec/internal/datagen"
	"xquec/internal/experiments"
	"xquec/internal/storage"
)

// codecBenchValues extracts the plaintext values of the XMark
// description container once per test binary: a prose-heavy corpus
// representative of what the entropy coders see during ingestion.
var codecBenchValues = sync.OnceValue(func() [][]byte {
	doc := datagen.XMark(datagen.XMarkConfig{Scale: benchScale, Seed: experiments.Seed})
	s, err := storage.Load(doc, storage.LoadOptions{
		Plan: &storage.CompressionPlan{DefaultAlgorithm: storage.AlgBlob},
	})
	if err != nil {
		panic(err)
	}
	c, ok := s.ContainerByPath("/site/open_auctions/open_auction/annotation/description/text/#text")
	if !ok {
		panic("missing description container")
	}
	values := make([][]byte, c.Len())
	for i := range values {
		v, err := c.Decode(nil, i)
		if err != nil {
			panic(err)
		}
		values[i] = v
	}
	return values
})

// codecBenchTrainers lists the string codecs the kernel benchmarks
// cover, in costmodel.Algorithms order.
var codecBenchTrainers = []compress.Trainer{
	alm.Trainer{},
	huffman.Trainer{},
	hutucker.Trainer{},
	blob.Trainer{},
}

// BenchmarkCodecEncode measures per-codec encode throughput (MB/s of
// plaintext consumed) over the corpus, reusing one destination buffer
// so the codec kernel — not the allocator — is what is measured.
func BenchmarkCodecEncode(b *testing.B) {
	values := codecBenchValues()
	for _, tr := range codecBenchTrainers {
		b.Run(tr.Name(), func(b *testing.B) {
			codec, err := tr.Train(values)
			if err != nil {
				b.Fatal(err)
			}
			plain := 0
			for _, v := range values {
				plain += len(v)
			}
			var dst []byte
			b.SetBytes(int64(plain))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, v := range values {
					if dst, err = codec.Encode(dst[:0], v); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCodecDecode measures per-codec decode throughput (MB/s of
// plaintext produced) over the pre-encoded corpus.
func BenchmarkCodecDecode(b *testing.B) {
	values := codecBenchValues()
	for _, tr := range codecBenchTrainers {
		b.Run(tr.Name(), func(b *testing.B) {
			codec, err := tr.Train(values)
			if err != nil {
				b.Fatal(err)
			}
			encs := make([][]byte, len(values))
			plain := 0
			for i, v := range values {
				enc, err := codec.Encode(nil, v)
				if err != nil {
					b.Fatal(err)
				}
				encs[i] = enc
				plain += len(v)
			}
			var dst []byte
			b.SetBytes(int64(plain))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, enc := range encs {
					if dst, err = codec.Decode(dst[:0], enc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
