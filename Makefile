# Tier-1 gate plus convenience targets. `make check` is what CI (and
# every PR) must keep green.

GO ?= go

.PHONY: check build test race vet vet-unsafeptr apicheck bench-serve bench bench-query bench-par bench-shard bench-codec bench-vm bench-append bench-succinct bench-succinct-smoke bench-diff bench-paper fuzz-smoke

check: vet vet-unsafeptr apicheck build race bench bench-succinct-smoke bench-diff-advisory ## tier-1: vet + deprecated-API gate + build + race-clean tests + bench smoke

vet:
	$(GO) vet ./...

# The succinct bitvector kernels index raw word slices; keep the
# unsafe-pointer analyzer explicitly on so any future unsafe use in the
# hot paths is vetted.
vet-unsafeptr:
	$(GO) vet -unsafeptr ./...

# Deprecated-API gate: commands, examples and internal packages must use
# the consolidated entry points (Compress with Options.Shards, Execute)
# instead of the deprecated wrappers the root package keeps for
# compatibility. Root-package tests exercising the wrappers are exempt.
apicheck:
	@bad=$$(grep -rn --include='*.go' --exclude='*_test.go' -E '(CompressSharded|\.QueryWith|\.QueryContext|\.RunWith|\.RunContext)\(' cmd examples internal || true); \
	if [ -n "$$bad" ]; then \
		echo "deprecated xquec API usage (use Compress/Execute):"; echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serving-throughput baseline (recorded in EXPERIMENTS.md).
bench-serve:
	$(GO) test ./internal/server/ -run xxx -bench BenchmarkServerQuery -benchtime 2s

# Ingestion + decode + serving benchmarks with allocation counts; each
# run appends one JSON record to BENCH_ingest.json for cross-commit
# comparison.
bench: bench-query bench-par bench-shard bench-codec bench-vm bench-append bench-succinct
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	($(GO) test -run '^$$' -bench 'BenchmarkCompressXMark|BenchmarkDecodeScratch' -benchmem . && \
	 $(GO) test -run '^$$' -bench BenchmarkServerQuery -benchmem ./internal/server/) \
	| /tmp/benchjson -o BENCH_ingest.json -label ingest+decode+serve

# Streaming result-path benchmarks: time-to-first-item at 10×-apart
# cardinalities (must stay flat) and WriteXML-vs-SerializeXML
# allocation counts. Appends to BENCH_query.json.
bench-query:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkFirstResult|BenchmarkWriteXML|BenchmarkSerializeXML' -benchmem . \
	| /tmp/benchjson -o BENCH_query.json -label query-streaming

# Intra-query parallelism benchmarks: the partitioned container scan
# and the multi-container predicate fan-out at worker budgets 1/2/4.
# Appends to BENCH_query_par.json. Speedups over p=1 require a
# multi-core host; see EXPERIMENTS.md for the calibration notes.
bench-par:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkParQuery' -benchmem . \
	| /tmp/benchjson -o BENCH_query_par.json -label query-parallel

# Scatter-gather benchmarks: a scatterable query through per-shard
# fan-out + rank-ordered merge at 1/2/4/8 shards vs the unsharded
# baseline, and the fused-fallback path. Appends to BENCH_shard.json.
# Like bench-par, sharded speedups need a multi-core host; on one core
# the sharded rows measure coordination + merge overhead.
bench-shard:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkShard(Scatter|Fallback)' -benchmem . \
	| /tmp/benchjson -o BENCH_shard.json -label shard-scatter

# Codec kernel microbenchmarks: per-codec encode/decode MB/s over the
# XMark description container. Appends to BENCH_codec.json; the
# DecodeCost constants in internal/costmodel are derived from these
# records (see EXPERIMENTS.md).
bench-codec:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkCodec(Encode|Decode)' -benchmem . \
	| /tmp/benchjson -o BENCH_codec.json -label codec-kernels

# Mutable-repository benchmarks: appending one document vs re-ingesting
# the whole concatenated corpus, and query latency over the same corpus
# held as 1/2/4 segments (scattered merge and fused fallback). Appends
# to BENCH_append.json.
bench-append:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkAppend(Ingest|Query)' -benchmem . \
	| /tmp/benchjson -o BENCH_append.json -label append-segments

# Succinct-structure benchmarks: structure density (bits per tree
# node) and resident bytes per backend, Descendants/Parent operator
# throughput, and end-to-end query latency, each run on both the
# record-array oracle and the balanced-parentheses self-index. Appends
# to BENCH_succinct.json.
bench-succinct:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkSuccinct' -benchmem . \
	| /tmp/benchjson -o BENCH_succinct.json -label succinct-structure

# One-iteration smoke of the succinct bench harness for `make check`:
# proves the benchmarks still compile and run, without recording JSON.
bench-succinct-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSuccinct' -benchtime 1x . >/dev/null

# Compiled-plan engine benchmarks: the same streaming/predicate
# workloads on the stack VM vs the tree-walking oracle (per-item
# dispatch cost, first-item latency, allocs). Appends to BENCH_vm.json;
# the before/after record lives in EXPERIMENTS.md.
bench-vm:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkVM(Stream|FirstResult|Predicate)' -benchmem . \
	| /tmp/benchjson -o BENCH_vm.json -label vm-dispatch

# Compare the latest two records of every benchmark log: `make check`
# appends a fresh record per log (via bench), so this answers "what did
# this commit change" benchmark-by-benchmark. bench-diff fails on
# regressions past the threshold; the -advisory variant (in check)
# reports them without failing the gate, since single-run noise on a
# shared machine is well above a real gate threshold.
BENCH_DIFF_THRESHOLD ?= 10
bench-diff:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	@fail=0; for f in BENCH_*.json; do \
		echo "== $$f"; \
		/tmp/benchjson -diff -threshold $(BENCH_DIFF_THRESHOLD) $$f $$f || fail=1; \
	done; exit $$fail

.PHONY: bench-diff-advisory
bench-diff-advisory:
	-@$(MAKE) --no-print-directory bench-diff

# Short fuzzing pass over the codec fuzz targets (roundtrip, order
# preservation, decode-vs-reference). Not part of tier-1 `check`; the
# targets' seed corpora still run under plain `go test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzHuffmanRoundtrip -fuzztime 5s ./internal/compress/huffman/
	$(GO) test -run '^$$' -fuzz FuzzHuffmanDecodeGarbage -fuzztime 5s ./internal/compress/huffman/
	$(GO) test -run '^$$' -fuzz FuzzHuTuckerRoundtrip -fuzztime 5s ./internal/compress/hutucker/
	$(GO) test -run '^$$' -fuzz FuzzHuTuckerDecodeGarbage -fuzztime 5s ./internal/compress/hutucker/
	$(GO) test -run '^$$' -fuzz FuzzALMRoundtrip -fuzztime 5s ./internal/compress/alm/
	$(GO) test -run '^$$' -fuzz FuzzALMOrder -fuzztime 5s ./internal/compress/alm/
	$(GO) test -run '^$$' -fuzz FuzzALMDecodeGarbage -fuzztime 5s ./internal/compress/alm/
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime 5s ./internal/vm/
	$(GO) test -run '^$$' -fuzz FuzzBitvectorRankSelect -fuzztime 5s ./internal/succinct/
	$(GO) test -run '^$$' -fuzz FuzzBPNavigation -fuzztime 5s ./internal/succinct/
	$(GO) test -run '^$$' -fuzz FuzzBulkNavigation -fuzztime 5s ./internal/storage/

# Full paper benchmark suite (scaled-down in-test versions).
bench-paper:
	$(GO) test -bench . -benchtime 1x .
