# Tier-1 gate plus convenience targets. `make check` is what CI (and
# every PR) must keep green.

GO ?= go

.PHONY: check build test race vet bench-serve bench

check: vet build race ## tier-1: vet + build + race-clean tests

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serving-throughput baseline (recorded in EXPERIMENTS.md).
bench-serve:
	$(GO) test ./internal/server/ -run xxx -bench BenchmarkServerQuery -benchtime 2s

# Full paper benchmark suite (scaled-down in-test versions).
bench:
	$(GO) test -bench . -benchtime 1x .
