# Tier-1 gate plus convenience targets. `make check` is what CI (and
# every PR) must keep green.

GO ?= go

.PHONY: check build test race vet bench-serve bench bench-query bench-par bench-paper

check: vet build race bench ## tier-1: vet + build + race-clean tests + bench smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serving-throughput baseline (recorded in EXPERIMENTS.md).
bench-serve:
	$(GO) test ./internal/server/ -run xxx -bench BenchmarkServerQuery -benchtime 2s

# Ingestion + decode + serving benchmarks with allocation counts; each
# run appends one JSON record to BENCH_ingest.json for cross-commit
# comparison.
bench: bench-query bench-par
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	($(GO) test -run '^$$' -bench 'BenchmarkCompressXMark|BenchmarkDecodeScratch' -benchmem . && \
	 $(GO) test -run '^$$' -bench BenchmarkServerQuery -benchmem ./internal/server/) \
	| /tmp/benchjson -o BENCH_ingest.json -label ingest+decode+serve

# Streaming result-path benchmarks: time-to-first-item at 10×-apart
# cardinalities (must stay flat) and WriteXML-vs-SerializeXML
# allocation counts. Appends to BENCH_query.json.
bench-query:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkFirstResult|BenchmarkWriteXML|BenchmarkSerializeXML' -benchmem . \
	| /tmp/benchjson -o BENCH_query.json -label query-streaming

# Intra-query parallelism benchmarks: the partitioned container scan
# and the multi-container predicate fan-out at worker budgets 1/2/4.
# Appends to BENCH_query_par.json. Speedups over p=1 require a
# multi-core host; see EXPERIMENTS.md for the calibration notes.
bench-par:
	@$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkParQuery' -benchmem . \
	| /tmp/benchjson -o BENCH_query_par.json -label query-parallel

# Full paper benchmark suite (scaled-down in-test versions).
bench-paper:
	$(GO) test -bench . -benchtime 1x .
