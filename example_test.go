package xquec_test

import (
	"fmt"
	"log"
	"os"

	"xquec"
)

const catalog = `<catalog>
  <book year="2000"><title>XMill</title><price>42.50</price></book>
  <book year="2002"><title>XGrind</title><price>28.00</price></book>
  <book year="2004"><title>XQueC</title><price>45.00</price></book>
</catalog>`

// Compress a document and evaluate a query whose range predicate runs
// in the compressed domain.
func Example() {
	db, err := xquec.Compress([]byte(catalog), xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`
	  FOR $b IN document("catalog.xml")/catalog/book
	  WHERE $b/price >= 40
	  RETURN $b/title/text()`)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	if _, err := res.WriteXML(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	// Output:
	// XMill
	// XQueC
}

// Results is a pull cursor: each Next advances the evaluation by one
// item, and stopping early skips the remaining work entirely.
func ExampleResults_Next() {
	db, err := xquec.Compress([]byte(catalog), xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`/catalog/book/title/text()`)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	for {
		item, ok, err := res.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		xml, err := item.XML()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(xml)
	}
	// Output:
	// XMill
	// XGrind
	// XQueC
}

// Aggregates and constructors work over the compressed containers; only
// serialized output is decompressed.
func ExampleDatabase_Query() {
	db, err := xquec.Compress([]byte(catalog), xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res := db.MustQuery(`<summary books="{count(/catalog/book)}" total="{sum(/catalog/book/price)}"/>`)
	defer res.Close()
	res.WriteXML(os.Stdout)
	fmt.Println()
	// Output:
	// <summary books="3" total="115.5"/>
}

// Explain shows the plan without running the query: which accesses hit
// the structure summary and which predicates stay compressed.
func ExampleDatabase_Explain() {
	db, err := xquec.Compress([]byte(catalog), xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := db.Explain(`FOR $b IN /catalog/book WHERE $b/price >= 40 RETURN $b/title/text()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	// Output:
	// FLWOR
	//   FOR $b IN /catalog/book: StructureSummaryAccess /catalog/book (3 nodes)
	//     pushdown ($b/price >= 40) -> /catalog/book/price/#text [decimal, ContAccess range on compressed bytes]
	//   RETURN
	//     Path $b/title/text(): summary-guided navigation /catalog/book/title (3 nodes)
}

// ExampleDatabase_Containers inspects the per-path containers and the
// algorithms chosen for them.
func ExampleDatabase_Containers() {
	db, err := xquec.Compress([]byte(catalog), xquec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range db.Containers() {
		fmt.Printf("%s %s/%s\n", c.Path, c.Kind, c.Algorithm)
	}
	// Output:
	// /catalog/book/@year int/int
	// /catalog/book/title/#text string/alm
	// /catalog/book/price/#text decimal/decimal
}
