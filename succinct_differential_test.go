package xquec_test

import (
	"context"
	"fmt"
	"testing"

	"xquec"
	"xquec/internal/datagen"
	"xquec/internal/xmarkq"
)

// buildMatrixDB builds one cell of the differential topology matrix: a
// base compressed at the given shard count, grown to the given segment
// count through the Writer.
func buildMatrixDB(t *testing.T, docs [][]byte, shards int) *xquec.Database {
	t.Helper()
	var base *xquec.Database
	var err error
	if shards > 1 {
		base, err = xquec.CompressSharded(docs[0], shards, xquec.Options{})
	} else {
		base, err = xquec.Compress(docs[0], xquec.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 1 {
		return base
	}
	w, err := xquec.NewWriter(base, xquec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := w.DB()
	for _, doc := range docs[1:] {
		if err := w.Append(doc); err != nil {
			t.Fatal(err)
		}
		if db, err = w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSuccinctDifferentialMatrix is the tier-1 gate of the succinct
// structure backend: every benchmark query, over every topology in
// shards {1,2,4} x segments {1,2} x parallelism {1,4}, must return
// byte-identical results whether the balanced-parentheses self-index
// or the record-array oracle (XQUEC_STRUCT=records) is resident.
func TestSuccinctDifferentialMatrix(t *testing.T) {
	docs := [][]byte{
		datagen.XMark(datagen.XMarkConfig{Scale: 0.02, Seed: 61}),
		datagen.XMark(datagen.XMarkConfig{Scale: 0.02, Seed: 62}),
	}
	queries := append(xmarkq.Queries(), xmarkq.ExtendedQueries()...)
	want := map[string]string{}

	run := func(record bool) {
		for _, shards := range []int{1, 2, 4} {
			for _, segs := range []int{1, 2} {
				if shards > 1 && segs > 1 {
					continue // a sharded database is not appendable
				}
				db := buildMatrixDB(t, docs[:segs], shards)
				for _, par := range []int{1, 4} {
					for _, q := range queries {
						k := fmt.Sprintf("sh=%d/seg=%d/p=%d/%s", shards, segs, par, q.ID)
						res, err := db.QueryWith(context.Background(), q.Text,
							xquec.QueryOptions{Parallelism: par})
						if err != nil {
							t.Fatalf("%s: %v", k, err)
						}
						got, err := res.SerializeXML()
						res.Close()
						if err != nil {
							t.Fatalf("%s: %v", k, err)
						}
						if record {
							want[k] = got
						} else if got != want[k] {
							t.Errorf("%s: succinct result differs from records oracle\n got: %.200q\nwant: %.200q",
								k, got, want[k])
						}
					}
				}
			}
		}
	}

	t.Setenv("XQUEC_STRUCT", "records")
	run(true)
	t.Setenv("XQUEC_STRUCT", "")
	run(false)
}
